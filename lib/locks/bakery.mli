(** Lamport's Bakery lock — Algorithm 1 of the paper: Θ(1) fences and
    Θ(n) RMRs per passage, correct under RMO.

    Exposed as a reusable [k]-slot {e node} so the generalized
    tournament {!Gt} can mount [Bakery[n^(1/f)]] instances at its tree
    nodes.

    Note: the paper's listing clears the choosing flag {e before}
    publishing the ticket (lines 6/7) — a typo that breaks mutual
    exclusion even under SC; we use Lamport's original order (see the
    implementation comment and test
    ["paper listing order is a typo"]). *)

open Memsim

type node = { choosing : Reg.t array; ticket : Reg.t array }

val nslots : node -> int

(** Allocate a [slots]-slot bakery node; [owner s] is the segment slot
    [s]'s registers live in. *)
val alloc :
  Layout.Builder.builder -> name:string -> slots:int -> owner:(int -> Pid.t) ->
  node

(** Acquire slot [slot]. The [fences] triple enables the E8 ablation:
    fence 1 follows the choosing-flag write (a store→load guard),
    fence 2 the ticket write, fence 3 the flag clear. *)
val acquire_slot : ?fences:bool * bool * bool -> node -> int -> unit Program.m

val release_slot : ?fenced:bool -> node -> int -> unit Program.m

(** The paper's n-process Bakery: slot [i] = process [i], registers in
    process [i]'s segment. *)
val lock : Lock.factory
