(** The generalized tournament lock [GT_f] (Section 3, Figure 1): a
    tree of height [f], branching [⌈n^(1/f)⌉], with a Bakery lock per
    node — [Θ(f)] fences and [O(f·n^(1/f))] RMRs per passage, matching
    the lower bound at every [1 ≤ f ≤ log n]. *)

open Memsim

val ipow : int -> int -> int

(** Smallest branching factor [b ≥ 2] with [b^height ≥ nprocs]. *)
val branching : nprocs:int -> height:int -> int

type t

val make : Layout.Builder.builder -> nprocs:int -> height:int -> t

(** Node index and slot of process [p] at tree depth [depth] (root =
    0). Exposed for structural tests. *)
val position : t -> Pid.t -> depth:int -> int * int

val acquire : t -> Pid.t -> unit Program.m
val release : t -> Pid.t -> unit Program.m

(** [lock ~height] is the [GT_height] factory. *)
val lock : height:int -> Lock.factory
