(** The generalized tournament lock [GT_f] (Section 3, Figure 1).

    A tree of height [f] with branching factor [b = ⌈n^(1/f)⌉]; the [n]
    leaves are statically assigned to processes. Each internal node
    carries a [Bakery[b]] instance; to win the lock a process wins the
    bakery in each of the [f] nodes along its leaf-to-root path, taking
    the slot of the child it arrives from.

    Per passage this costs [Θ(f)] fences (four per node — the Bakery
    constant) and [O(f · n^(1/f))] RMRs, which matches the paper's lower
    bound [f·(log(r/f)+1) ∈ Ω(log n)] for every [1 ≤ f ≤ log n]:
    [GT_1] is the Bakery lock and [GT_{log n}] the binary tournament
    tree. *)

open Memsim
open Program

let ipow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

(** Smallest branching factor [b ≥ 2] with [b^f ≥ n]. *)
let branching ~nprocs ~height =
  let rec go b = if ipow b height >= nprocs then b else go (b + 1) in
  go 2

type t = {
  height : int;
  branch : int;
  nodes : (int * int, Bakery.node) Hashtbl.t;  (** (depth, index) → node *)
}

(* Node index and slot of process [p] at depth [d] (root = depth 0). *)
let position t p ~depth =
  let below = ipow t.branch (t.height - depth) in
  (p / below, p / (below / t.branch) mod t.branch)

let node t ~depth ~index = Hashtbl.find t.nodes (depth, index)

let make builder ~nprocs ~height =
  if height < 1 then Fmt.invalid_arg "Gt.make: height %d" height;
  let branch = if nprocs <= 1 then 2 else branching ~nprocs ~height in
  let t = { height; branch; nodes = Hashtbl.create 64 } in
  (* allocate only the nodes some process actually visits, in a
     deterministic order *)
  for d = 0 to height - 1 do
    for p = 0 to nprocs - 1 do
      let index, _ = position t p ~depth:d in
      if not (Hashtbl.mem t.nodes (d, index)) then
        Hashtbl.add t.nodes (d, index)
          (Bakery.alloc builder
             ~name:(Fmt.str "gt.%d.%d" d index)
             ~slots:branch
             ~owner:(fun _ -> Layout.no_owner))
    done
  done;
  t

let acquire t p : unit m =
  (* deepest node first *)
  let rec go = function
    | [] -> return ()
    | d :: rest ->
        let index, slot = position t p ~depth:d in
        let* () = Bakery.acquire_slot (node t ~depth:d ~index) slot in
        go rest
  in
  go (List.init t.height (fun i -> t.height - 1 - i))

let release t p : unit m =
  (* root first (reverse acquisition order) *)
  let rec go d =
    if d = t.height then return ()
    else
      let index, slot = position t p ~depth:d in
      let* () = Bakery.release_slot (node t ~depth:d ~index) slot in
      go (d + 1)
  in
  go 0

(** [lock ~height] is the [GT_height] factory. *)
let lock ~height : Lock.factory =
 fun builder ~nprocs ->
  let t = make builder ~nprocs ~height in
  {
    Lock.name = Fmt.str "gt[f=%d,b=%d]" height t.branch;
    nprocs;
    intended_model = Memory_model.Rmo;
    acquire = acquire t;
    release = release t;
  }
