(** Name-indexed registry of every lock the experiments exercise; the
    CLI and benches look algorithms up here so that all tools agree on
    spelling and parameters. *)

let fixed =
  [
    ("bakery", Bakery.lock);
    ("tournament", Tournament.lock);
    ("ttas", Ttas.lock);
    ("clh", Clh.lock);
    ("anderson", Anderson.lock);
    ("anderson-boolean", Anderson.boolean_variant);
    ("filter", Filter.lock);
    ("peterson", Peterson.lock);
    ("peterson-batched", Peterson.lock_with ~style:`Batched);
    ("peterson-unfenced", Peterson.lock_with ~style:`Unfenced);
  ]

(** [find name] resolves a fixed lock or the parametric family
    ["gt:<height>"]. *)
let find name : Lock.factory option =
  match List.assoc_opt name fixed with
  | Some f -> Some f
  | None -> (
      match String.split_on_char ':' name with
      | [ "gt"; h ] -> (
          match int_of_string_opt h with
          | Some h when h >= 1 -> Some (Gt.lock ~height:h)
          | Some _ | None -> None)
      | _ -> None)

let names = List.map fst fixed @ [ "gt:<height>" ]
