(** The telemetry hub: a named registry of counters, span timers and
    gauges for one run.

    A {e counter} is a {!Cells.t} — monotonic, bumped by workers with
    plain writes on padded per-worker slots. A {e span} is a counter
    denominated in nanoseconds, accumulated around a timed section. A
    {e gauge} is a callback polled at sample time for an instantaneous
    value (frontier size, visited occupancy); gauge callbacks must be
    safe to call from the sampler domain while workers run, i.e. they
    may only perform racy-safe reads (atomics, plain ints) or take
    locks nobody holds while waiting on telemetry.

    Registration is idempotent by name and cheap; the engine registers
    once at startup and keeps the returned cells, so the hot path never
    touches the hub. Entries are kept in registration order — that is
    the order progress lines and NDJSON records present them in.

    The registry mutates under [lock]; {!snapshot} reads under the same
    lock (gauge callbacks included), so a sampler never observes a
    half-registered entry. Counter {e bumping} takes no lock ever. *)

type source =
  | Counter of Cells.t
  | Gauge of (unit -> float)

type t = {
  workers : int;
  lock : Mutex.t;
  mutable entries : (string * source) list;  (** newest first *)
}

let create ~workers () =
  if workers < 1 then Fmt.invalid_arg "Hub.create: %d workers" workers;
  { workers; lock = Mutex.create (); entries = [] }

let workers t = t.workers

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(** Register (or retrieve) the counter called [name]. *)
let counter t name =
  with_lock t @@ fun () ->
  match List.assoc_opt name t.entries with
  | Some (Counter c) -> c
  | Some (Gauge _) -> Fmt.invalid_arg "Hub.counter: %S is a gauge" name
  | None ->
      let c = Cells.create ~workers:t.workers in
      t.entries <- (name, Counter c) :: t.entries;
      c

(** Attach an externally owned {!Cells.t} (e.g. the frontier's steal
    cells) under [name], replacing any previous registration. *)
let attach t name cells =
  with_lock t @@ fun () ->
  t.entries <-
    (name, Counter cells) :: List.remove_assoc name t.entries

(** Register the gauge called [name], replacing any previous one (a
    fresh engine run re-points the standard gauges at its own state). *)
let gauge t name f =
  with_lock t @@ fun () ->
  t.entries <- (name, Gauge f) :: List.remove_assoc name t.entries

(** A span timer: a counter in nanoseconds. *)
let span t name = counter t (name ^ "_ns")

(** Time [f ()] into span [cells] on behalf of [worker]. *)
let time cells ~worker f =
  let t0 = Clock.now_ns () in
  let finally () = Cells.add cells ~worker (Clock.now_ns () - t0) in
  Fun.protect ~finally f

(** Current value of [name]: counter total or polled gauge. *)
let read t name =
  with_lock t @@ fun () ->
  match List.assoc_opt name t.entries with
  | Some (Counter c) -> Some (float_of_int (Cells.total c))
  | Some (Gauge g) -> Some (g ())
  | None -> None

let read_int t name =
  match read t name with Some v -> Some (int_of_float v) | None -> None

(** All entries in registration order, counters as totals and gauges
    polled — one consistent pass under the registry lock. *)
let snapshot t : (string * float) list =
  with_lock t @@ fun () ->
  List.rev_map
    (fun (name, src) ->
      match src with
      | Counter c -> (name, float_of_int (Cells.total c))
      | Gauge g -> (name, g ()))
    t.entries

(** Counter totals only (the deterministic-at-j=1 part), registration
    order — what the final NDJSON run record carries next to the
    engine's own verdict fields. *)
let counter_fields t : (string * int) list =
  with_lock t @@ fun () ->
  List.rev
    (List.filter_map
       (fun (name, src) ->
         match src with
         | Counter c -> Some (name, Cells.total c)
         | Gauge _ -> None)
       t.entries)
