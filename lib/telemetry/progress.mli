(** Progress-line rendering from successive hub snapshots. *)

(** Counter names promoted to the head of the line, with a rate. *)
val primaries : string list

(** Human-readable magnitudes: [19_331_070. -> "19.33M"]. *)
val human : float -> string

(** One progress line: primary entry with its rate over [dt] seconds
    against [prev], remaining entries as [name=value]. *)
val line :
  label:string ->
  elapsed:float ->
  dt:float ->
  prev:(string * float) list ->
  (string * float) list ->
  string
