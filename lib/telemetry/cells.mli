(** Per-worker counter cells, padded apart so concurrent bumps never
    false-share a cache line. Slot [w] is written only by worker [w]
    (plain, non-atomic bumps — the zero-cost discipline); observers
    read racily and see valid, possibly stale counts, exact once the
    writers have quiesced. *)

type t

val create : workers:int -> t
val workers : t -> int

(** [add t ~worker n] — plain bump of worker [worker]'s slot. The
    worker index must be the caller's own. *)
val add : t -> worker:int -> int -> unit

val incr : t -> worker:int -> unit

(** Worker [worker]'s own slot. *)
val get : t -> worker:int -> int

(** Sum over all workers (racy but valid; exact when quiesced). *)
val total : t -> int

(** Per-worker values, in worker order. *)
val per_worker : t -> int array
