(** Rendering of live progress lines from successive hub snapshots.

    One line per sample, e.g.:

    {v
    [mc   3.0s] states 1.28M (+431k/s)  transitions=3.34M frontier=512
                visited=1.28M visited_skew=1.31 expansions=1.28M
                dedup_hits=2.05M steals=117 sleeps=12
    v}

    The {e primary} entry — the first of [primaries] present in the
    snapshot, falling back to the first entry — is shown with its rate
    against the previous sample; everything else as [name=value].
    Keys ending in [_ns] render as seconds. *)

let primaries = [ "states"; "programs"; "seeds" ]

(* 1234 -> "1234", 45_210 -> "45.2k", 19_331_070 -> "19.3M" *)
let human f =
  let a = Float.abs f in
  if a >= 1e9 then Fmt.str "%.2fG" (f /. 1e9)
  else if a >= 1e6 then Fmt.str "%.2fM" (f /. 1e6)
  else if a >= 10_000. then Fmt.str "%.1fk" (f /. 1e3)
  else if Float.is_integer f then Fmt.str "%.0f" f
  else Fmt.str "%.2f" f

let pick_primary snap =
  match
    List.find_opt (fun name -> List.mem_assoc name snap) primaries
  with
  | Some name -> Some name
  | None -> ( match snap with (name, _) :: _ -> Some name | [] -> None)

(** Render one progress line. [prev] is the previous snapshot ([[]] on
    the first sample) and [dt] the seconds since it was taken. *)
let line ~label ~elapsed ~dt ~prev snap =
  let b = Buffer.create 128 in
  Buffer.add_string b (Fmt.str "[%s %5.1fs]" label elapsed);
  let primary = pick_primary snap in
  (match primary with
  | Some name ->
      let v = List.assoc name snap in
      let rate =
        if dt <= 0. then None
        else
          match List.assoc_opt name prev with
          | Some p -> Some ((v -. p) /. dt)
          | None -> Some (v /. dt)
      in
      Buffer.add_string b (Fmt.str " %s %s" name (human v));
      Option.iter
        (fun r -> Buffer.add_string b (Fmt.str " (+%s/s)" (human r)))
        rate
  | None -> ());
  List.iter
    (fun (name, v) ->
      if Some name <> primary then
        if Filename.check_suffix name "_ns" then
          Buffer.add_string b
            (Fmt.str " %s=%.3fs"
               (Filename.chop_suffix name "_ns")
               (v /. 1e9))
        else Buffer.add_string b (Fmt.str " %s=%s" name (human v)))
    snap;
  Buffer.contents b
