(** Periodic sampler domain: every [interval] seconds, snapshot the
    hub, print a progress line to [progress] and append a ["sample"]
    record to [sink]. {!stop} emits one final sample (so short runs
    still produce at least one) and joins the domain. *)

type t

val start :
  hub:Hub.t ->
  ?interval:float ->
  ?label:string ->
  ?progress:Format.formatter ->
  ?sink:Sink.t ->
  unit ->
  t

val stop : t -> unit
