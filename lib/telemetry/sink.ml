(** NDJSON sink: one flat JSON object per line, machine-readable run
    records. The emitter is deliberately tiny — flat objects with
    string/int/float/bool values cover every record we produce, and a
    hand-rolled printer keeps the library dependency-free. Writes are
    serialized by a mutex (the sampler and the final-record writer can
    race on shutdown) and each record is flushed whole, so a consumer
    tailing the file never sees a torn line. *)

type value = I of int | F of float | S of string | B of bool

type t = {
  oc : out_channel;
  lock : Mutex.t;
  mutable closed : bool;
}

let create path =
  { oc = open_out path; lock = Mutex.create (); closed = false }

(* JSON string escaping: quote, backslash, and control characters. *)
let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_value b = function
  | I n -> Buffer.add_string b (string_of_int n)
  | F f ->
      (* NaN/infinities are not JSON; whole floats print without an
         exponent so consumers can read them back as integers *)
      Buffer.add_string b
        (if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity
         then "null"
         else if Float.is_integer f && Float.abs f < 1e15 then
           Printf.sprintf "%.0f" f
         else Printf.sprintf "%.6g" f)
  | S s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | B v -> Buffer.add_string b (string_of_bool v)

(** Emit one record: [{"type": kind, ...fields}]. Later duplicates of
    a key are dropped (first occurrence wins), so callers can prepend
    authoritative fields over generic ones. *)
let emit t ~kind fields =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"type\":\"";
  escape b kind;
  Buffer.add_char b '"';
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen "type" ();
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        Buffer.add_string b ",\"";
        escape b k;
        Buffer.add_string b "\":";
        add_value b v
      end)
    fields;
  Buffer.add_string b "}\n";
  Mutex.lock t.lock;
  if not t.closed then begin
    Buffer.output_buffer t.oc b;
    flush t.oc
  end;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end;
  Mutex.unlock t.lock
