(** The periodic sampler: a dedicated domain that every [interval]
    seconds snapshots the hub, prints a live progress line and appends
    a ["sample"] NDJSON record. The workers never see it — sampling
    costs them nothing beyond the racy reads of their counter cells
    and whatever the registered gauges do (atomic loads; the visited
    gauges take brief shard locks).

    {!stop} takes one final sample before joining, so even a run
    shorter than the interval leaves at least one sample record, and
    the last progress line reflects the final counts. Stop latency is
    bounded by the 50 ms poll slice, not by the interval. *)

type t = {
  stopped : bool Atomic.t;
  dom : unit Domain.t;
}

let slice = 0.05

let start ~hub ?(interval = 1.0) ?(label = "tel") ?progress ?sink () =
  if interval <= 0. then
    Fmt.invalid_arg "Sampler.start: interval %g" interval;
  let stopped = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let t0 = Clock.now_s () in
        let prev = ref [] and prev_t = ref t0 in
        let sample ~final =
          let now = Clock.now_s () in
          let elapsed = now -. t0 and dt = now -. !prev_t in
          let snap = Hub.snapshot hub in
          Option.iter
            (fun ppf ->
              Fmt.pf ppf "%s@."
                (Progress.line ~label ~elapsed ~dt ~prev:!prev snap))
            progress;
          Option.iter
            (fun s ->
              Sink.emit s ~kind:"sample"
                (("t_s", Sink.F elapsed)
                 :: ("final", Sink.B final)
                 :: List.map (fun (k, v) -> (k, Sink.F v)) snap))
            sink;
          prev := snap;
          prev_t := now
        in
        let rec run () =
          (* sleep [interval] in small slices so stop() is prompt *)
          let rec doze left =
            if Atomic.get stopped then false
            else if left <= 0. then true
            else begin
              Unix.sleepf (Float.min slice left);
              doze (left -. slice)
            end
          in
          if doze interval then begin
            sample ~final:false;
            run ()
          end
        in
        run ();
        sample ~final:true)
  in
  { stopped; dom }

let stop t =
  Atomic.set t.stopped true;
  Domain.join t.dom
