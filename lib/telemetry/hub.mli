(** Named registry of counters (per-worker padded cells), span timers
    (nanosecond counters) and gauges (instantaneous callbacks) for one
    run. Registration is idempotent and kept in registration order;
    bumping the returned {!Cells.t} never touches the hub. *)

type t

(** [create ~workers ()] — worker ids are [0 .. workers-1]. *)
val create : workers:int -> unit -> t

val workers : t -> int

(** Register (or retrieve) a monotonic counter. *)
val counter : t -> string -> Cells.t

(** Attach externally owned cells under a name (replaces). *)
val attach : t -> string -> Cells.t -> unit

(** Register a gauge callback, replacing any previous one. The
    callback runs on the sampler domain while workers are live — it
    must only perform racy-safe reads or take uncontended-by-telemetry
    locks. *)
val gauge : t -> string -> (unit -> float) -> unit

(** A span timer: counter [name ^ "_ns"]. *)
val span : t -> string -> Cells.t

(** Accumulate the duration of [f ()] into a span's cells. *)
val time : Cells.t -> worker:int -> (unit -> 'a) -> 'a

(** Current value by name (counter total, or polled gauge). *)
val read : t -> string -> float option

val read_int : t -> string -> int option

(** Every entry in registration order; counters as totals, gauges
    polled, all under one registry-lock pass. *)
val snapshot : t -> (string * float) list

(** Counter totals only, registration order — the deterministic
    content of a run record. *)
val counter_fields : t -> (string * int) list
