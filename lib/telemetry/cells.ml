(** Per-worker counter cells, padded against false sharing.

    One logical counter is an array of per-worker slots; worker [w]
    bumps slot [w] with a {e plain} (non-atomic) read-modify-write.
    This is sound because each slot is written by exactly one domain —
    the worker that owns the index — and read racily only by observers
    (the sampler, or a caller summing totals after the workers have
    joined). Under the OCaml 5 memory model a racy read of an immediate
    [int] field returns some value actually written there (no tearing,
    no out-of-thin-air), so an observer sees a momentarily stale but
    valid count; after a join, plain program order makes the sum exact.

    Slots are spread [stride] words apart (128 bytes) so two workers
    bumping adjacent counters never contend on a cache line — the same
    padding discipline as {!Mc.Visited}'s shards. The cost of a bump is
    two array accesses and an integer add: this is the "disabled sink
    compiles to plain int bumps on pre-allocated cells" guarantee the
    engine's hot path relies on. *)

type t = { slots : int array; workers : int }

(* 16 words = 128 bytes: covers the 64-byte lines of x86 and the
   128-byte prefetch pairs of recent ARM. *)
let stride = 16

let create ~workers =
  if workers < 1 then Fmt.invalid_arg "Cells.create: %d workers" workers;
  { slots = Array.make (workers * stride) 0; workers }

let workers t = t.workers

let[@inline] add t ~worker n =
  let i = worker * stride in
  t.slots.(i) <- t.slots.(i) + n

let[@inline] incr t ~worker = add t ~worker 1

(** Worker [w]'s own slot (racy when [w] is still running). *)
let get t ~worker = t.slots.(worker * stride)

(** Sum over workers — exact once the writers have quiesced (e.g.
    after the engine joins its domains), racy but valid meanwhile. *)
let total t =
  let s = ref 0 in
  for w = 0 to t.workers - 1 do
    s := !s + t.slots.(w * stride)
  done;
  !s

(** Per-worker values, in worker order. *)
let per_worker t = Array.init t.workers (fun w -> get t ~worker:w)
