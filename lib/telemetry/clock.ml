(** Wall-clock time for span timers and sampler timestamps.

    [Unix.gettimeofday] is wall time, not a monotonic clock; spans
    measured across an NTP step can be off. That is acceptable here:
    spans instrument sleep/wake churn and sampler intervals, where
    tens-of-microseconds accuracy over seconds-long runs is plenty —
    and it keeps the library free of any dependency the container may
    not carry. *)

let now_s () = Unix.gettimeofday ()

(** Nanoseconds as an [int] (63-bit: good for ~292 years). *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
