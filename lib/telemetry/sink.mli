(** NDJSON sink: flat one-object-per-line records, mutex-serialized
    and flushed whole so tailing consumers never see a torn line. *)

type value = I of int | F of float | S of string | B of bool

type t

val create : string -> t

(** [emit t ~kind fields] writes [{"type": kind, ...fields}] as one
    line. Duplicate keys after the first are dropped, so callers can
    prepend authoritative fields over generic ones. No-op after
    {!close}. *)
val emit : t -> kind:string -> (string * value) list -> unit

val close : t -> unit
