(** Wall-clock time (see implementation note on monotonicity). *)

val now_s : unit -> float
val now_ns : unit -> int
