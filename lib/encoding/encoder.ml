(** The encoder: from a permutation to command stacks (Section 5.2).

    Given an ordering algorithm's initial configuration and a
    permutation [π], the construction grows stack sequences
    [S_0, S_1, ...] one command at a time: decode [S_i] fully, find the
    last permutation position [τ_i] with a non-empty stack, pick the
    process [p_ℓ] to extend (rule (3): move to the next position once
    the current one has finished), and append at the {e bottom} of its
    stack

    - [wait-local-finish(λ)] if this is its first command and λ earlier
      processes touched its memory segment (E1);
    - [proceed] if it is not stuck at a fence over a non-empty buffer
      (E2a);
    - otherwise (E2b) one of [wait-hidden-commit(γ)] /
      [wait-read-finish(ζ)] / [commit], by splitting the decoded
      execution at the point [E* | E**] where [p_ℓ]'s stack first
      emptied and counting, in the postfix [E**], the γ buffered
      registers that earlier processes overwrite (those commits can
      hide [p_ℓ]'s) and the ζ earlier processes that read buffered
      registers (they must finish before [p_ℓ] may commit).

    The construction ends when the last process of π reaches a final
    state; Lemma 5.1's invariants are asserted along the way when
    [check_invariants] is set (the default in tests). *)

open Memsim

type result = {
  pi : int array;  (** permutation: position → pid *)
  stacks : Cstack.t Pid.Map.t;  (** the code: final stack per process *)
  trace : Trace.t;  (** the encoded execution [E_π] *)
  final : Config.t;
  iterations : int;  (** total commands placed = m_π *)
}

exception
  Invariant_violation of { iteration : int; message : string }

let fail_invariant iteration fmt =
  Fmt.kstr (fun message -> raise (Invariant_violation { iteration; message })) fmt

(* Suffix of [trace] after its first [n] model steps. *)
let after_model_steps n trace =
  let rec go n = function
    | [] -> []
    | s :: rest ->
        if n = 0 then s :: rest
        else go (if Step.is_model_step s then n - 1 else n) rest
  in
  go n trace

let stack_of stacks p =
  match Pid.Map.find_opt p stacks with None -> Cstack.empty | Some s -> s

(* Largest position with a non-empty stack, -1 if none. *)
let tau pi stacks =
  let rec go k best =
    if k = Array.length pi then best
    else go (k + 1) (if Cstack.is_empty (stack_of stacks pi.(k)) then best else k)
  in
  go 0 (-1)

let check_lemma_invariants ~iteration pi stacks cfg t =
  let n = Array.length pi in
  for k = 0 to n - 1 do
    let p = pi.(k) in
    (* (I1) *)
    if Cstack.is_empty (stack_of stacks p) <> (k > t) then
      fail_invariant iteration "(I1): stack emptiness of position %d vs τ=%d" k t;
    (* (I2) *)
    if k < t && Config.final_value cfg p <> Some k then
      fail_invariant iteration
        "(I2): position %d (p%d) should be final with value %d" k p k;
    if k > t && (Config.pstate cfg p).Config.ops <> 0 then
      fail_invariant iteration "(I2): position %d (p%d) should be initial" k p
  done

let encode ?(max_iterations = 2_000_000) ?(check_invariants = true) ~cinit
    ~(pi : int array) () : result =
  let n = Array.length pi in
  let layout = cinit.Config.layout in
  let all_but p =
    List.init n Fun.id |> List.filter (fun q -> not (Pid.equal q p)) |> Pid.Set.of_list
  in
  let rec iterate i stacks =
    if i > max_iterations then
      fail_invariant i "encoder did not converge within %d iterations"
        max_iterations;
    let trace, ext_end, _ = Decoder.run (Decoder.make cinit stacks) in
    let cfg = ext_end.Decoder.cfg in
    if Config.is_final cfg pi.(n - 1) then begin
      (* construction complete; all processes must have returned their
         position (this is what makes the code injective over π) *)
      if check_invariants then
        Array.iteri
          (fun k p ->
            if Config.final_value cfg p <> Some k then
              fail_invariant i "final: position %d (p%d) returned %a, wanted %d"
                k p
                Fmt.(option ~none:(any "none") int)
                (Config.final_value cfg p) k)
          pi;
      { pi; stacks; trace; final = cfg; iterations = i }
    end
    else begin
      let t = tau pi stacks in
      if check_invariants then check_lemma_invariants ~iteration:i pi stacks cfg t;
      let l =
        if t = -1 || Config.is_final cfg pi.(t) then t + 1 else t
      in
      let pl = pi.(l) in
      let cmd =
        if Cstack.is_empty (stack_of stacks pl) then begin
          let accessors = Trace.segment_accessors layout ~segment_of:pl trace in
          let lambda = Pid.Set.cardinal accessors in
          if lambda > 0 then Command.Wait_local_finish (lambda, Pid.Set.empty)
          else Command.Proceed
          (* an empty-stack process cannot be poised at a fence with a
             non-empty buffer, so E2a applies when E1 does not *)
        end
        else if
          Config.next_kind cfg pl <> Program.Op_fence
          || Wbuf.is_empty (Config.wbuf cfg pl)
        then Command.Proceed (* E2a *)
        else begin
          (* E2b: split E_i where p_ℓ's stack first became empty *)
          let _, _, split =
            Decoder.run ~watch:pl (Decoder.make cinit stacks)
          in
          let split =
            match split with
            | Some s -> s
            | None ->
                fail_invariant i
                  "(I6): p%d's stack never emptied during E_%d" pl i
          in
          let postfix = after_model_steps split trace in
          let buffered = Wbuf.regs (Config.wbuf cfg pl) in
          let among = all_but pl in
          let gamma =
            Reg.Set.cardinal (Trace.committed_regs ~among buffered postfix)
          in
          let zeta =
            Pid.Set.cardinal (Trace.shared_readers ~among buffered postfix)
          in
          if gamma > 0 then Command.Wait_hidden_commit gamma
          else if zeta > 0 then Command.Wait_read_finish (zeta, Pid.Set.empty)
          else Command.Commit
        end
      in
      let stacks =
        Pid.Map.add pl (Cstack.push_bottom cmd (stack_of stacks pl)) stacks
      in
      iterate (i + 1) stacks
    end
  in
  iterate 0 Decoder.empty_stacks

(** Decode a result's stacks from scratch and return the reconstructed
    return values by position — the round-trip check: position [k]'s
    process must return [k], which identifies π. *)
let decode_returns ~cinit (r : result) : int option array =
  let _, ext, _ = Decoder.run (Decoder.make cinit r.stacks) in
  Array.map (fun p -> Config.final_value ext.Decoder.cfg p) r.pi
