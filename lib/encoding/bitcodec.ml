(** Bit-level serialization of command stacks.

    The lower bound counts {e bits}: Section 5.3.4 encodes each command
    with O(1) bits plus O(log v) bits for its parameter value v, giving
    [m·(log(v/m)+1)] total via concavity. We realise that concretely —
    3-bit command tags plus Elias-γ parameters — so experiments measure
    the actual code length [B(E_π)] of the actual stacks and compare it
    against [log2 n!]. Elias-γ uses [2⌊log2 v⌋+1] bits for v ≥ 1,
    matching the O(log v) the proof charges.

    The runtime [S] sets of wait commands are not part of the code (they
    start empty and are reconstructed by the decoder). *)

type writer = { buf : Buffer.t; mutable cur : int; mutable used : int }

let writer () = { buf = Buffer.create 64; cur = 0; used = 0 }

let put_bit w b =
  w.cur <- (w.cur lsl 1) lor (if b then 1 else 0);
  w.used <- w.used + 1;
  if w.used = 8 then begin
    Buffer.add_char w.buf (Char.chr w.cur);
    w.cur <- 0;
    w.used <- 0
  end

(* [width] highest-order-first bits of [v] *)
let put_bits w v ~width =
  for i = width - 1 downto 0 do
    put_bit w ((v lsr i) land 1 = 1)
  done

let bit_length w = (Buffer.length w.buf * 8) + w.used

type bits = { data : Bytes.t; nbits : int }

let finish w : bits =
  let nbits = bit_length w in
  if w.used > 0 then Buffer.add_char w.buf (Char.chr (w.cur lsl (8 - w.used)));
  { data = Buffer.to_bytes w.buf; nbits }

type reader = { bits : bits; mutable pos : int }

let reader bits = { bits; pos = 0 }

let get_bit r =
  if r.pos >= r.bits.nbits then invalid_arg "Bitcodec: out of bits";
  let byte = Char.code (Bytes.get r.bits.data (r.pos / 8)) in
  let bit = (byte lsr (7 - (r.pos mod 8))) land 1 = 1 in
  r.pos <- r.pos + 1;
  bit

let get_bits r ~width =
  let rec go acc width =
    if width = 0 then acc
    else go ((acc lsl 1) lor (if get_bit r then 1 else 0)) (width - 1)
  in
  go 0 width

(** Elias-γ code of [v ≥ 1]: ⌊log2 v⌋ zeros, then [v] in binary. *)
let put_gamma w v =
  if v < 1 then Fmt.invalid_arg "Bitcodec.put_gamma: %d" v;
  let width =
    let rec go w x = if x = 1 then w else go (w + 1) (x lsr 1) in
    go 1 v
  in
  for _ = 1 to width - 1 do
    put_bit w false
  done;
  put_bits w v ~width

let get_gamma r =
  let rec zeros n = if get_bit r then n else zeros (n + 1) in
  let z = zeros 0 in
  let rest = if z = 0 then 0 else get_bits r ~width:z in
  (1 lsl z) lor rest

(** Length in bits of γ(v) — for analytic accounting without buffers. *)
let gamma_length v =
  let rec log2 acc x = if x = 1 then acc else log2 (acc + 1) (x lsr 1) in
  (2 * log2 0 v) + 1

let tag_of = function
  | Command.Proceed -> 0
  | Command.Commit -> 1
  | Command.Wait_hidden_commit _ -> 2
  | Command.Wait_read_finish _ -> 3
  | Command.Wait_local_finish _ -> 4

let tag_width = 3

let put_command w c =
  put_bits w (tag_of c) ~width:tag_width;
  match c with
  | Command.Proceed | Command.Commit -> ()
  | Command.Wait_hidden_commit k
  | Command.Wait_read_finish (k, _)
  | Command.Wait_local_finish (k, _) ->
      put_gamma w k

let get_command r =
  match get_bits r ~width:tag_width with
  | 0 -> Command.Proceed
  | 1 -> Command.Commit
  | 2 -> Command.Wait_hidden_commit (get_gamma r)
  | 3 -> Command.Wait_read_finish (get_gamma r, Memsim.Pid.Set.empty)
  | 4 -> Command.Wait_local_finish (get_gamma r, Memsim.Pid.Set.empty)
  | t -> Fmt.invalid_arg "Bitcodec.get_command: tag %d" t

(** Serialize the stacks of all [n] processes (stack sizes γ-coded,
    commands top to bottom). *)
let encode_stacks ~nprocs stacks : bits =
  let w = writer () in
  for p = 0 to nprocs - 1 do
    let s =
      match Memsim.Pid.Map.find_opt p stacks with
      | None -> Cstack.empty
      | Some s -> s
    in
    put_gamma w (Cstack.size s + 1);
    List.iter (put_command w) (Cstack.to_list s)
  done;
  finish w

let decode_stacks ~nprocs bits : Cstack.t Memsim.Pid.Map.t =
  let r = reader bits in
  let rec stacks p acc =
    if p = nprocs then acc
    else
      let size = get_gamma r - 1 in
      let cmds = List.init size (fun _ -> get_command r) in
      stacks (p + 1) (Memsim.Pid.Map.add p (Cstack.of_list cmds) acc)
  in
  stacks 0 Memsim.Pid.Map.empty

(** Code length in bits of a stack map — the measured [B(E_π)]. *)
let code_length ~nprocs stacks = (encode_stacks ~nprocs stacks).nbits
