(** Quantities of Theorem 4.2 and the per-execution census of Table 1.

    For an encoded execution we report: β (fences), ρ (combined RMRs),
    the command census (how many of each command, sum of parameter
    values — the proof needs #commands ∈ O(β) and Σ values ∈ O(ρ)), the
    measured bit length of the serialized stacks, the analytic form
    [β·(log2(ρ/β)+1)], and the information-theoretic floor [log2 n!]
    that at least one permutation's code must reach. *)

open Memsim

type census = {
  proceeds : int;
  commits : int;
  hidden : int;  (** wait-hidden-commit commands *)
  read_finish : int;
  local_finish : int;
  total_commands : int;  (** m_π *)
  total_value : int;  (** v_π = Σ val(cmd) *)
}

let census_of_stacks stacks : census =
  let z =
    {
      proceeds = 0;
      commits = 0;
      hidden = 0;
      read_finish = 0;
      local_finish = 0;
      total_commands = 0;
      total_value = 0;
    }
  in
  Pid.Map.fold
    (fun _ stack acc ->
      List.fold_left
        (fun acc c ->
          let acc =
            {
              acc with
              total_commands = acc.total_commands + 1;
              total_value = acc.total_value + Command.value c;
            }
          in
          match c with
          | Command.Proceed -> { acc with proceeds = acc.proceeds + 1 }
          | Command.Commit -> { acc with commits = acc.commits + 1 }
          | Command.Wait_hidden_commit _ -> { acc with hidden = acc.hidden + 1 }
          | Command.Wait_read_finish _ ->
              { acc with read_finish = acc.read_finish + 1 }
          | Command.Wait_local_finish _ ->
              { acc with local_finish = acc.local_finish + 1 })
        acc (Cstack.to_list stack))
    stacks z

let pp_census ppf c =
  Fmt.pf ppf
    "commands=%d (proceed %d, commit %d, hidden %d, read-fin %d, local-fin %d) \
     Σval=%d"
    c.total_commands c.proceeds c.commits c.hidden c.read_finish c.local_finish
    c.total_value

type report = {
  nprocs : int;
  beta : int;  (** fences in E_π *)
  rho : int;  (** combined-model RMRs in E_π *)
  census : census;
  bits : int;  (** measured code length B(E_π) *)
  formula : float;  (** β·(log2(ρ/β) + 1) *)
  log2_fact : float;  (** log2 n! *)
}

let log2 x = log x /. log 2.

let log2_factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc +. log2 (float_of_int k)) (k - 1) in
  go 0. n

let formula ~beta ~rho =
  if beta = 0 then 0.
  else
    float_of_int beta
    *. (log2 (max 1. (float_of_int rho /. float_of_int beta)) +. 1.)

let report_of (r : Encoder.result) : report =
  let nprocs = Config.nprocs r.Encoder.final in
  let beta = Metrics.beta (Config.metrics r.Encoder.final) in
  let rho = Metrics.rho (Config.metrics r.Encoder.final) in
  {
    nprocs;
    beta;
    rho;
    census = census_of_stacks r.Encoder.stacks;
    bits = Bitcodec.code_length ~nprocs r.Encoder.stacks;
    formula = formula ~beta ~rho;
    log2_fact = log2_factorial nprocs;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "n=%d β=%d ρ=%d bits=%d β(log(ρ/β)+1)=%.1f log2(n!)=%.1f | %a" r.nprocs
    r.beta r.rho r.bits r.formula r.log2_fact pp_census r.census
