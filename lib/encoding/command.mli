(** The five commands of the lower-bound encoding (Table 1 /
    Section 5.1). The [S] sets of the wait commands are runtime decoder
    state; only the integer parameter is part of the code. *)

type t =
  | Proceed
  | Commit
  | Wait_hidden_commit of int
  | Wait_read_finish of int * Memsim.Pid.Set.t
  | Wait_local_finish of int * Memsim.Pid.Set.t

(** 1 for the parameterless commands, [k] for the parameterized ones —
    the quantity the lower bound sums. *)
val value : t -> int

(** Equality ignoring the runtime [S] sets. *)
val same_code : t -> t -> bool

val pp : t Fmt.t
