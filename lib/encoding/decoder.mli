(** The decoder (Section 5.1): from command stacks to an execution, via
    rules D1 (commit steps, possibly redirected to hide a later
    process's writes), D2 (operation steps of the smallest non-commit
    enabled process) and D3 (end). *)

open Memsim

type ext = { cfg : Config.t; stacks : Cstack.t Pid.Map.t }

val make : Config.t -> Cstack.t Pid.Map.t -> ext
val empty_stacks : Cstack.t Pid.Map.t
val stack : ext -> Pid.t -> Cstack.t
val top : ext -> Pid.t -> Command.t option

(** Classifications of Section 5.1 (exposed for tests). *)
val is_commit_enabled : ext -> Pid.t -> bool

val is_non_commit_enabled : ext -> Pid.t -> bool

(** One decoding step; [None] is rule D3 (execution over). *)
val step : ext -> (Step.t list * ext) option

exception Diverged of ext

(** Decode to completion. With [watch], also report the length of the
    trace prefix [E*] ending where [watch]'s stack is empty for the
    first time (counted in model steps). *)
val run : ?max_steps:int -> ?watch:Pid.t -> ext -> Trace.t * ext * int option
