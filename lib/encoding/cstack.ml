(** Command stacks.

    The decoder pops and pushes at the {e top}; the encoder appends new
    commands at the {e bottom} (the inductive construction of Section
    5.2 extends the future of a process's behaviour). Stacks are short
    — O(fences of one process) — so a list with [push_bottom] as append
    is the right representation. *)

type t = Command.t list  (** head = top *)

let empty : t = []
let is_empty (t : t) = t = []
let top = function [] -> None | c :: _ -> Some c

let pop = function
  | [] -> invalid_arg "Cstack.pop: empty stack"
  | c :: rest -> (c, rest)

let push c (t : t) : t = c :: t
let push_bottom c (t : t) : t = t @ [ c ]
let size = List.length
let to_list (t : t) = t
let of_list (l : Command.t list) : t = l

(** Sum of command values — the stack's contribution to the v_π of
    Section 5.3.4. *)
let value (t : t) = List.fold_left (fun acc c -> acc + Command.value c) 0 t

(** Replace the top element (which must exist) by [c]. *)
let replace_top c (t : t) : t =
  match t with
  | [] -> invalid_arg "Cstack.replace_top: empty stack"
  | _ :: rest -> c :: rest

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") Command.pp) t
