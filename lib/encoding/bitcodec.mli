(** Bit-level serialization of command stacks: 3-bit command tags plus
    Elias-γ parameters, so experiments measure the actual code length
    B(E_π) against [log2 n!]. *)

type writer

val writer : unit -> writer
val put_bit : writer -> bool -> unit
val put_bits : writer -> int -> width:int -> unit
val bit_length : writer -> int

type bits = { data : Bytes.t; nbits : int }

val finish : writer -> bits

type reader

val reader : bits -> reader

(** Raises [Invalid_argument] past the end. *)
val get_bit : reader -> bool

val get_bits : reader -> width:int -> int

(** Elias-γ code of [v ≥ 1]. *)
val put_gamma : writer -> int -> unit

val get_gamma : reader -> int

(** Length in bits of γ(v): [2⌊log2 v⌋ + 1]. *)
val gamma_length : int -> int

val put_command : writer -> Command.t -> unit
val get_command : reader -> Command.t

(** Serialize the stacks of all [nprocs] processes. *)
val encode_stacks : nprocs:int -> Cstack.t Memsim.Pid.Map.t -> bits

val decode_stacks : nprocs:int -> bits -> Cstack.t Memsim.Pid.Map.t

(** Code length in bits — the measured B(E_π). *)
val code_length : nprocs:int -> Cstack.t Memsim.Pid.Map.t -> int
