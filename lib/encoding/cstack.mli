(** Command stacks: the decoder pops/pushes at the top, the encoder
    appends at the bottom. *)

type t

val empty : t
val is_empty : t -> bool
val top : t -> Command.t option

(** Raises [Invalid_argument] on an empty stack. *)
val pop : t -> Command.t * t

val push : Command.t -> t -> t
val push_bottom : Command.t -> t -> t
val size : t -> int

(** Top first. *)
val to_list : t -> Command.t list

val of_list : Command.t list -> t

(** Sum of command values. *)
val value : t -> int

(** Replace the top element (which must exist). *)
val replace_top : Command.t -> t -> t

val pp : t Fmt.t
