(** The encoder (Section 5.2): grow the command stacks for a
    permutation π one command at a time (rules E1/E2a/E2b) until the
    last process of π reaches a final state. Lemma 5.1 invariants are
    asserted when [check_invariants] is set. *)

open Memsim

type result = {
  pi : int array;  (** permutation: position → pid *)
  stacks : Cstack.t Pid.Map.t;  (** the code *)
  trace : Trace.t;  (** the encoded execution E_π *)
  final : Config.t;
  iterations : int;  (** total commands placed, m_π *)
}

exception Invariant_violation of { iteration : int; message : string }

val encode :
  ?max_iterations:int -> ?check_invariants:bool -> cinit:Config.t ->
  pi:int array -> unit -> result

(** Decode the result's stacks from scratch; position [k]'s process
    must return [k] — the injectivity behind the counting argument. *)
val decode_returns : cinit:Config.t -> result -> int option array
