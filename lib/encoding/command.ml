(** The five commands of the lower-bound encoding (Table 1 / Section 5.1).

    An execution [E_π] is encoded as one command stack per process; the
    decoder interprets stacks against configurations to reconstruct the
    execution, and the encoder grows stacks bottom-up. The [S] sets of
    the wait commands are {e runtime} decoder state (they start empty
    and collect the processes being waited for); only the integer
    parameter is part of the code, which is why {!val:value} and the bit
    codec look at [k] alone. *)

type t =
  | Proceed
      (** let the process take steps until it is poised at a fence with
          a non-empty write buffer (or at its return) *)
  | Commit  (** commit the rest of the write batch *)
  | Wait_hidden_commit of int
      (** [k] writes of this process's batch are to be committed right
          before earlier processes overwrite them (hidden commits) *)
  | Wait_read_finish of int * Memsim.Pid.Set.t
      (** wait for [k] earlier processes that read registers this
          process is about to write, then commit *)
  | Wait_local_finish of int * Memsim.Pid.Set.t
      (** before the first step: wait for [k] earlier processes that
          access this process's memory segment to finish *)

(** The value of a command — the quantity the lower bound sums: 1 for
    the parameterless commands, [k] for the parameterized ones. *)
let value = function
  | Proceed | Commit -> 1
  | Wait_hidden_commit k | Wait_read_finish (k, _) | Wait_local_finish (k, _) ->
      k

(** Structural equality ignoring the runtime [S] sets — the notion under
    which a decoded stack matches its encoded form. *)
let same_code a b =
  match (a, b) with
  | Proceed, Proceed | Commit, Commit -> true
  | Wait_hidden_commit j, Wait_hidden_commit k -> j = k
  | Wait_read_finish (j, _), Wait_read_finish (k, _) -> j = k
  | Wait_local_finish (j, _), Wait_local_finish (k, _) -> j = k
  | ( ( Proceed | Commit | Wait_hidden_commit _ | Wait_read_finish _
      | Wait_local_finish _ ),
      _ ) ->
      false

let pp ppf = function
  | Proceed -> Fmt.string ppf "proceed"
  | Commit -> Fmt.string ppf "commit"
  | Wait_hidden_commit k -> Fmt.pf ppf "wait-hidden-commit(%d)" k
  | Wait_read_finish (k, s) ->
      Fmt.pf ppf "wait-read-finish(%d,{%a})" k
        (Fmt.list ~sep:Fmt.comma Memsim.Pid.pp)
        (Memsim.Pid.Set.elements s)
  | Wait_local_finish (k, s) ->
      Fmt.pf ppf "wait-local-finish(%d,{%a})" k
        (Fmt.list ~sep:Fmt.comma Memsim.Pid.pp)
        (Memsim.Pid.Set.elements s)
