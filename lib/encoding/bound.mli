(** Quantities of Theorem 4.2 and the per-execution command census of
    Table 1. *)

type census = {
  proceeds : int;
  commits : int;
  hidden : int;
  read_finish : int;
  local_finish : int;
  total_commands : int;  (** m_π *)
  total_value : int;  (** v_π = Σ val(cmd) *)
}

val census_of_stacks : Cstack.t Memsim.Pid.Map.t -> census
val pp_census : census Fmt.t

type report = {
  nprocs : int;
  beta : int;  (** fences in E_π *)
  rho : int;  (** combined-model RMRs in E_π *)
  census : census;
  bits : int;  (** measured code length B(E_π) *)
  formula : float;  (** β·(log2(ρ/β) + 1) *)
  log2_fact : float;  (** log2 n! *)
}

val log2_factorial : int -> float
val formula : beta:int -> rho:int -> float
val report_of : Encoder.result -> report
val pp_report : report Fmt.t
