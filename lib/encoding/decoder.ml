(** The decoder: from command stacks to an execution (Section 5.1).

    An extended configuration [Γ = (C; St_0 .. St_{n-1})] determines an
    execution [E(Γ)] one step at a time. Processes are classified as

    - {e finished} — in a final state;
    - {e commit enabled} — top of stack is [commit], poised at a fence,
      buffer non-empty;
    - {e non-commit enabled} — top of stack is [proceed], the process
      would reach a final state running alone (the solo-termination side
      condition that keeps executions finite), and its next operation is
      a read/write (spins are reads), a fence over an empty buffer, or a
      return whose value equals the number of finished processes;
    - {e waiting} — everything else.

    Decoding rule D1 serves commit-enabled processes (possibly
    redirecting the commit to a process whose [wait-hidden-commit] wants
    its write hidden under the imminent overwrite), D2 serves the
    smallest non-commit-enabled process with an operation step, and D3
    ends the execution when everyone is waiting or finished. The rules
    also maintain the wait commands' [S] sets, which record which
    processes are being waited for. *)

open Memsim

type ext = { cfg : Config.t; stacks : Cstack.t Pid.Map.t }

let make cfg stacks = { cfg; stacks }
let empty_stacks = Pid.Map.empty

let stack ext p =
  match Pid.Map.find_opt p ext.stacks with None -> Cstack.empty | Some s -> s

let set_stack ext p s = { ext with stacks = Pid.Map.add p s ext.stacks }
let top ext p = Cstack.top (stack ext p)

let pids ext = List.init (Config.nprocs ext.cfg) Fun.id

let is_commit_enabled ext p =
  (match top ext p with Some Command.Commit -> true | _ -> false)
  && Config.next_kind ext.cfg p = Program.Op_fence
  && not (Wbuf.is_empty (Config.wbuf ext.cfg p))

let is_non_commit_enabled ext p =
  (match top ext p with Some Command.Proceed -> true | _ -> false)
  && (match Config.next_kind ext.cfg p with
     | Program.Op_read | Op_write | Op_spin -> true
     | Op_return r -> r = Config.nb_final ext.cfg
     | Op_fence -> Wbuf.is_empty (Config.wbuf ext.cfg p)
     | Op_cas ->
         (* the paper's class has no strong primitives; a cas would need
            its own commit discipline, so we refuse to decode it *)
         invalid_arg "Decoder: cas in an encoded program"
     | Op_done -> false)
  && Exec.terminates_solo ext.cfg p

(* Smallest pid satisfying [f]. *)
let min_pid ext f = List.find_opt (f ext) (pids ext)

(* D1c / D2d bookkeeping: process [actor] accessed a register in
   [owner]'s segment; if [owner] waits on local finishes, extend S. *)
let note_segment_access ext ~owner ~actor =
  if Pid.equal owner actor then ext
  else
    match top ext owner with
    | Some (Command.Wait_local_finish (k, s)) ->
        set_stack ext owner
          (Cstack.replace_top
             (Command.Wait_local_finish (k, Pid.Set.add actor s))
             (stack ext owner))
    | _ -> ext

(** One decoding step. [None] means rule D3: the execution has ended. *)
let step ext : (Step.t list * ext) option =
  match min_pid ext is_commit_enabled with
  | Some p ->
      (* Rule D1: a commit step. *)
      let wb_p = Config.wbuf ext.cfg p in
      let r =
        match Wbuf.smallest_reg wb_p with
        | Some r -> r
        | None -> assert false
      in
      let hider =
        min_pid ext (fun ext q ->
            (match top ext q with
            | Some (Command.Wait_hidden_commit k) -> k > 0
            | _ -> false)
            && Wbuf.mem (Config.wbuf ext.cfg q) r)
      in
      let actor = match hider with Some q -> q | None -> p in
      let wb_before_size = Wbuf.size (Config.wbuf ext.cfg actor) in
      let steps, cfg = Exec.exec_elt ext.cfg (actor, Some r) in
      let ext = { ext with cfg } in
      (* D1a: the batch of [p] is fully committed *)
      let ext =
        if hider = None && wb_before_size = 1 then
          match Cstack.pop (stack ext p) with
          | Command.Commit, rest -> set_stack ext p rest
          | c, _ ->
              Fmt.invalid_arg "Decoder D1a: expected commit on top, got %a"
                Command.pp c
        else ext
      in
      (* D1b: one hidden commit served *)
      let ext =
        match hider with
        | None -> ext
        | Some q -> (
            match Cstack.pop (stack ext q) with
            | Command.Wait_hidden_commit k, rest ->
                set_stack ext q
                  (if k - 1 > 0 then
                     Cstack.push (Command.Wait_hidden_commit (k - 1)) rest
                   else rest)
            | c, _ ->
                Fmt.invalid_arg
                  "Decoder D1b: expected wait-hidden-commit on top, got %a"
                  Command.pp c)
      in
      (* D1c: the commit touched someone's local segment *)
      let owner = Layout.owner ext.cfg.Config.layout r in
      let ext =
        if owner = Layout.no_owner then ext
        else note_segment_access ext ~owner ~actor
      in
      Some (steps, ext)
  | None -> (
      match min_pid ext is_non_commit_enabled with
      | None -> None (* Rule D3 *)
      | Some p ->
          (* Rule D2: an operation step by [p]. *)
          let cfg_before = ext.cfg in
          let steps, cfg = Exec.exec_elt ext.cfg (p, None) in
          let ext = { ext with cfg } in
          (* D2a: pop proceed once [p] is poised at a fence or return *)
          let ext =
            match Config.next_kind ext.cfg p with
            | Program.Op_fence | Op_return _ | Op_done ->
                let c, rest = Cstack.pop (stack ext p) in
                assert (c = Command.Proceed);
                set_stack ext p rest
            | Op_read | Op_write | Op_spin | Op_cas -> ext
          in
          let model_step =
            match List.filter Step.is_model_step steps with
            | [ s ] -> Some s
            | [] -> None
            | _ -> assert false
          in
          let ext =
            match model_step with
            | Some (Step.Return _) ->
                (* D2b: p finished; release every process waiting on it *)
                List.fold_left
                  (fun ext q ->
                    if Pid.equal q p then ext
                    else
                      match top ext q with
                      | Some (Command.Wait_read_finish (k, s))
                        when Pid.Set.mem p s ->
                          let _, rest = Cstack.pop (stack ext q) in
                          set_stack ext q
                            (if k - 1 > 0 then
                               Cstack.push (Command.Wait_read_finish (k - 1, s))
                                 rest
                             else rest)
                      | Some (Command.Wait_local_finish (k, s))
                        when Pid.Set.mem p s ->
                          let _, rest = Cstack.pop (stack ext q) in
                          set_stack ext q
                            (if k - 1 > 0 then
                               Cstack.push (Command.Wait_local_finish (k - 1, s))
                                 rest
                             else rest)
                      | _ -> ext)
                  ext (pids ext)
            | Some (Step.Read { reg; from_wbuf = false; _ }) ->
                (* D2c: q is about to write a register p just read *)
                let ext =
                  List.fold_left
                    (fun ext q ->
                      if Pid.equal q p then ext
                      else
                        match top ext q with
                        | Some (Command.Wait_read_finish (k, s))
                          when Wbuf.mem (Config.wbuf cfg_before q) reg ->
                            set_stack ext q
                              (Cstack.replace_top
                                 (Command.Wait_read_finish (k, Pid.Set.add p s))
                                 (stack ext q))
                        | _ -> ext)
                    ext (pids ext)
                in
                (* D2d: p read from someone's local segment *)
                let owner = Layout.owner ext.cfg.Config.layout reg in
                if owner = Layout.no_owner then ext
                else note_segment_access ext ~owner ~actor:p
            | Some
                ( Step.Read _ | Step.Write _ | Step.Fence _ | Step.Commit _
                | Step.Cas _ | Step.Rmw _ | Step.Note _ )
            | None ->
                ext
          in
          Some (steps, ext))

exception Diverged of ext

(** Decode to completion (rule D3). Returns the trace, the final
    extended configuration, and — when [watch] is given — the length of
    the trace prefix [E*] ending where [watch]'s stack is empty for the
    first time. Raises [Diverged] after [max_steps] decoding steps. *)
let run ?(max_steps = 5_000_000) ?watch ext :
    Trace.t * ext * int option =
  let watch_hit = ref None in
  let check_watch ext len =
    match watch with
    | Some w when !watch_hit = None && Cstack.is_empty (stack ext w) ->
        watch_hit := Some len
    | _ -> ()
  in
  check_watch ext 0;
  let rec go acc len budget ext =
    if budget <= 0 then raise (Diverged ext)
    else
      match step ext with
      | None -> (List.rev acc, ext, !watch_hit)
      | Some (steps, ext) ->
          let len = len + List.length (List.filter Step.is_model_step steps) in
          check_watch ext len;
          go (List.rev_append steps acc) len (budget - 1) ext
  in
  go [] 0 max_steps ext
