(** Lock-protected shared counter (one of the Section 4 object
    families), plus a CAS-based fetch-and-add for comparison. *)

open Memsim

type t = { lock : Locks.Lock.t; value : Reg.t }

val make : Locks.Lock.factory -> Layout.Builder.builder -> nprocs:int -> t

(** Atomically add [by] (default 1); evaluates to the previous value. *)
val increment : ?by:int -> t -> Pid.t -> int Program.m

(** Serialized read. *)
val get : t -> Pid.t -> int Program.m

val cas_counter : Layout.Builder.builder -> Reg.t
val cas_increment : Reg.t -> int Program.m
