(** The [Count] ordering algorithm (Section 4): read a shared register
    inside the critical section, write back +1 with a fence, return the
    value read. Ordering in the sense of Definition 4.1; its fence/RMR
    cost is one passage of the underlying lock plus O(1). *)

open Memsim

type t = {
  lock : Locks.Lock.t;
  c : Reg.t;
  program : Pid.t -> Program.t;  (** the full Count run for a process *)
}

val make : Locks.Lock.factory -> Layout.Builder.builder -> nprocs:int -> t

(** Standard configuration: every process runs the algorithm once — the
    execution shape of Theorem 4.2. *)
val configure :
  Locks.Lock.factory -> model:Memory_model.t -> nprocs:int -> t * Config.t
