(** Checks for the {e ordering} property (Definition 4.1).

    An algorithm is ordering if, whenever processes [p_0 .. p_{k-1}]
    return [0 .. k-1] in an execution that [p_k] cannot distinguish
    from one without later processes, [p_k] returns [k]. The paper
    notes the sequential consequence we can test directly: in any
    execution where processes run one at a time in permutation order,
    process [π(i)] must return [i].

    [check_sequential] runs exactly that for a given permutation and
    reports the returned values; [check_concurrent] additionally checks
    the weaker (but schedule-independent) invariant that the multiset
    of return values of a complete execution is [{0..n-1}] and that the
    values respect critical-section order. *)

open Memsim

type outcome = {
  permutation : int list;
  returns : (Pid.t * int) list;  (** in return order *)
  ordering_holds : bool;
}

let pp_outcome ppf o =
  Fmt.pf ppf "π=[%a] returns=[%a] %s"
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    o.permutation
    (Fmt.list ~sep:Fmt.comma (fun ppf (p, v) -> Fmt.pf ppf "p%d→%d" p v))
    o.returns
    (if o.ordering_holds then "ordering" else "NOT ORDERING")

(** Run the per-process programs of [cfg] sequentially in the order
    given by [permutation] and check that the i-th process returns i. *)
let check_sequential cfg permutation : outcome =
  let rec go order acc cfg =
    match order with
    | [] -> List.rev acc
    | p :: rest -> (
        match Exec.run_solo cfg p with
        | None -> Fmt.failwith "Ordering.check_sequential: p%d blocked" p
        | Some (_steps, cfg) ->
            let v =
              match Config.final_value cfg p with
              | Some v -> v
              | None -> Fmt.failwith "Ordering.check_sequential: p%d not final" p
            in
            go rest ((p, v) :: acc) cfg)
  in
  let returns = go permutation [] cfg in
  let ordering_holds =
    List.for_all2 (fun (_, v) i -> v = i) returns
      (List.init (List.length permutation) Fun.id)
  in
  { permutation; returns; ordering_holds }

(** For a complete concurrent execution: the return values must be a
    permutation of [0..n-1]. *)
let returns_are_permutation final =
  let n = Config.nprocs final in
  let vals =
    List.init n (fun p ->
        match Config.final_value final p with
        | Some v -> v
        | None -> Fmt.failwith "Ordering.returns_are_permutation: p%d not final" p)
  in
  List.sort compare vals = List.init n Fun.id
