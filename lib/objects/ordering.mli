(** Checks for the {e ordering} property (Definition 4.1). *)

open Memsim

type outcome = {
  permutation : int list;
  returns : (Pid.t * int) list;  (** in return order *)
  ordering_holds : bool;
}

val pp_outcome : outcome Fmt.t

(** Run the processes of [cfg] sequentially in permutation order and
    check that the i-th process returns i (the paper's sequential
    consequence of Definition 4.1). *)
val check_sequential : Config.t -> Pid.t list -> outcome

(** The return values of a complete execution form a permutation of
    [0..n-1]. *)
val returns_are_permutation : Config.t -> bool
