(** Ordering algorithms from object families (Section 4).

    The full version of the paper shows that a queue, a counter, or a
    fetch-and-increment object yields an ordering algorithm, so the
    fence/RMR tradeoff applies to implementations of all of them. These
    are those reductions, concretely:

    - {!via_counter}: Count itself — read, add one, return the old
      value (the k-th process through the critical section returns k);
    - {!via_fai}: one [fetch_add], return the previous value;
    - {!via_queue}: the queue starts holding [0 .. n-1] in order; each
      process dequeues once and returns what it got — the k-th dequeue
      returns k.

    Each construction produces the initial configuration in which every
    process runs the algorithm once — the execution shape of Theorem
    4.2 — so the Section 5 encoder runs over any of them. *)

open Memsim
open Program

type t = {
  name : string;
  cinit : Config.t;  (** every process runs the ordering algorithm once *)
}

let via_counter (factory : Locks.Lock.factory) ~model ~nprocs : t =
  let _, cinit = Count.configure factory ~model ~nprocs in
  { name = "count"; cinit }

let via_fai (factory : Locks.Lock.factory) ~model ~nprocs : t =
  let builder = Layout.Builder.create ~nprocs in
  let f = Fai.lock_based factory builder ~nprocs in
  let layout = Layout.Builder.freeze builder in
  let programs = Array.init nprocs (fun p -> Fai.ordering_program f p) in
  { name = "fetch-and-increment"; cinit = Config.make ~model ~layout programs }

let via_queue (factory : Locks.Lock.factory) ~model ~nprocs : t =
  let builder = Layout.Builder.create ~nprocs in
  let lock = factory builder ~nprocs in
  (* a queue whose slots are pre-filled with 0..n-1 via initial values:
     slot i holds i+1 (0 is reserved for "empty" in the return path),
     head = 0, tail = n *)
  let slots =
    Array.init nprocs (fun i ->
        Layout.Builder.alloc builder
          ~name:(Fmt.str "oq.slot[%d]" i)
          ~owner:Layout.no_owner ~init:(i + 1))
  in
  let head = Layout.Builder.alloc builder ~name:"oq.head" ~owner:Layout.no_owner ~init:0 in
  let layout = Layout.Builder.freeze builder in
  let program p =
    run
      (let* () = lock.Locks.Lock.acquire p in
       let* () = label "cs:enter" in
       let* hd = read head in
       let* v = read slots.(hd mod nprocs) in
       let* () = write head (hd + 1) in
       let* () = fence in
       let* () = label "cs:exit" in
       let* () = lock.Locks.Lock.release p in
       return (v - 1))
  in
  { name = "queue"; cinit = Config.make ~model ~layout (Array.init nprocs program) }

let all factory ~model ~nprocs =
  [
    via_counter factory ~model ~nprocs;
    via_fai factory ~model ~nprocs;
    via_queue factory ~model ~nprocs;
  ]
