(** A lock-protected bounded FIFO queue.

    One of the object families the tradeoff covers. Backed by a
    circular array of registers plus head/tail cursors, all protected
    by the supplied lock; [enqueue]/[dequeue] each cost one lock
    passage plus O(1) fences and RMRs on top.

    [dequeue] is non-blocking: it returns [None] on an empty queue
    rather than waiting, so the object is total and usable in
    terminating model-checked workloads. *)

open Memsim
open Program

type t = {
  lock : Locks.Lock.t;
  slots : Reg.t array;
  head : Reg.t;  (** next slot to dequeue *)
  tail : Reg.t;  (** next slot to enqueue *)
}

let capacity t = Array.length t.slots

let make (factory : Locks.Lock.factory) builder ~nprocs ~capacity : t =
  if capacity <= 0 then Fmt.invalid_arg "Queue_obj.make: capacity %d" capacity;
  let lock = factory builder ~nprocs in
  let slots =
    Layout.Builder.alloc_array builder ~name:"queue.slot" ~len:capacity
      ~owner:(fun _ -> Layout.no_owner)
      ~init:0
  in
  let head = Layout.Builder.alloc builder ~name:"queue.head" ~owner:Layout.no_owner ~init:0 in
  let tail = Layout.Builder.alloc builder ~name:"queue.tail" ~owner:Layout.no_owner ~init:0 in
  { lock; slots; head; tail }

(* read the slot register selected by a cursor value *)
let slot t cursor = t.slots.(cursor mod capacity t)

(** Enqueue [v]; evaluates to [false] if the queue was full. *)
let enqueue t p v : bool m =
  let* () = t.lock.Locks.Lock.acquire p in
  let* () = label "cs:enter" in
  let* tl = read t.tail in
  let* hd = read t.head in
  let* ok =
    if tl - hd >= capacity t then return false
    else
      let* () = write (slot t tl) v in
      let* () = write t.tail (tl + 1) in
      let* () = fence in
      return true
  in
  let* () = label "cs:exit" in
  let* () = t.lock.Locks.Lock.release p in
  return ok

(** Dequeue; evaluates to [Some v] or [None] if empty. *)
let dequeue t p : int option m =
  let* () = t.lock.Locks.Lock.acquire p in
  let* () = label "cs:enter" in
  let* hd = read t.head in
  let* tl = read t.tail in
  let* out =
    if hd >= tl then return None
    else
      let* v = read (slot t hd) in
      let* () = write t.head (hd + 1) in
      let* () = fence in
      return (Some v)
  in
  let* () = label "cs:exit" in
  let* () = t.lock.Locks.Lock.release p in
  return out
