(** The [Count] ordering algorithm (Section 4).

    Each process acquires a lock, reads a shared register [C]
    (initially 0), writes back [C+1] followed by a fence, releases the
    lock, and returns the value it read. The sequence of return values
    over any complete execution is a permutation of [0..n-1] paired with
    the order in which processes went through the critical section —
    which makes [Count] {e ordering} in the sense of Definition 4.1 and
    the vehicle for the lower bound: its fence/RMR cost is that of one
    lock passage plus a constant.

    The factory wraps {e any} lock, so the tradeoff experiments run
    [Count] over Bakery, over [GT_f] and over the tournament tree. *)

open Memsim
open Program

type t = {
  lock : Locks.Lock.t;
  c : Reg.t;
  program : Pid.t -> Program.t;  (** the full Count run for a process *)
}

let make (factory : Locks.Lock.factory) builder ~nprocs : t =
  let lock = factory builder ~nprocs in
  let c = Layout.Builder.alloc builder ~name:"count.C" ~owner:Layout.no_owner ~init:0 in
  let program p =
    run
      (let* () = lock.Locks.Lock.acquire p in
       let* () = label "cs:enter" in
       let* v = read c in
       let* () = write c (v + 1) in
       let* () = fence in
       let* () = label "cs:exit" in
       let* () = lock.Locks.Lock.release p in
       return v)
  in
  { lock; c; program }

(** Build the standard Count configuration: every process runs the
    algorithm once (the execution shape of Theorem 4.2). *)
let configure (factory : Locks.Lock.factory) ~model ~nprocs : t * Config.t =
  let builder = Layout.Builder.create ~nprocs in
  let t = make factory builder ~nprocs in
  let layout = Layout.Builder.freeze builder in
  (t, Config.make ~model ~layout (Array.init nprocs t.program))
