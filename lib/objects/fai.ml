(** Fetch-and-increment built three ways, for the ordering reductions of
    Section 4 and the comparison-primitive benchmarks:

    - {!lock_based}: Count's increment under any read/write lock —
      subject to the paper's fence/RMR tradeoff;
    - {!cas_based}: retry loop over [cas] — the strong-primitive
      escape hatch, whose barrier cost lives inside the primitive;
    - both expose the same [fetch_add] shape so workloads swap them
      freely. *)

open Memsim
open Program

type t = { fetch_add : Pid.t -> int m; name : string }

let lock_based (factory : Locks.Lock.factory) builder ~nprocs : t =
  let counter = Counter.make factory builder ~nprocs in
  {
    name = "fai-lock-" ^ counter.Counter.lock.Locks.Lock.name;
    fetch_add = (fun p -> Counter.increment counter p);
  }

let cas_based builder : t =
  let reg = Counter.cas_counter builder in
  { name = "fai-cas"; fetch_add = (fun _p -> Counter.cas_increment reg) }

(** Wrap a fetch-and-increment into an ordering algorithm à la Count:
    every process performs one [fetch_add] and returns the value —
    Definition 4.1 asks exactly that the k-th distinct finisher return
    k. *)
let ordering_program t p : Program.t =
  run
    (let* v = t.fetch_add p in
     return v)
