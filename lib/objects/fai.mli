(** Fetch-and-increment, lock-based and CAS-based, behind one
    interface — the Section 4 ordering reductions and the Section 6
    comparison-primitive benchmarks. *)

open Memsim

type t = { fetch_add : Pid.t -> int Program.m; name : string }

val lock_based : Locks.Lock.factory -> Layout.Builder.builder -> nprocs:int -> t
val cas_based : Layout.Builder.builder -> t

(** One [fetch_add], returning the value — an ordering algorithm. *)
val ordering_program : t -> Pid.t -> Program.t
