(** A lock-protected shared counter.

    The full version of the paper shows that counters (like queues and
    fetch-and-increment) can be used to build ordering algorithms, so
    the tradeoff covers their read/write implementations too. This is
    the straightforward lock-based construction: [increment] returns
    the pre-increment value, [get] reads without mutating. The
    per-operation fence/RMR cost is one lock passage plus O(1). *)

open Memsim
open Program

type t = { lock : Locks.Lock.t; value : Reg.t }

let make (factory : Locks.Lock.factory) builder ~nprocs : t =
  let lock = factory builder ~nprocs in
  let value =
    Layout.Builder.alloc builder ~name:"counter.value" ~owner:Layout.no_owner
      ~init:0
  in
  { lock; value }

(** Atomically add [by] (default 1); evaluates to the previous value. *)
let increment ?(by = 1) t p : int m =
  let* () = t.lock.Locks.Lock.acquire p in
  let* () = label "cs:enter" in
  let* v = read t.value in
  let* () = write t.value (v + by) in
  let* () = fence in
  let* () = label "cs:exit" in
  let* () = t.lock.Locks.Lock.release p in
  return v

(** A snapshot read (still serialized through the lock, so it
    linearizes with increments). *)
let get t p : int m =
  let* () = t.lock.Locks.Lock.acquire p in
  let* v = read t.value in
  let* () = t.lock.Locks.Lock.release p in
  return v

(** A wait-free CAS-based fetch-and-add for comparison with the
    lock-based construction (Section 6's comparison-primitive remark). *)
let cas_counter builder =
  Layout.Builder.alloc builder ~name:"counter.cas" ~owner:Layout.no_owner ~init:0

let cas_increment reg : int m =
  let rec retry () =
    let* v = read reg in
    let* ok = cas reg ~expect:v ~update:(v + 1) in
    if ok then return v else retry ()
  in
  retry ()
