(** Lock-protected bounded FIFO queue (one of the Section 4 object
    families). [dequeue] is total: it returns [None] on empty rather
    than waiting. *)

open Memsim

type t = {
  lock : Locks.Lock.t;
  slots : Reg.t array;
  head : Reg.t;
  tail : Reg.t;
}

val capacity : t -> int

val make :
  Locks.Lock.factory -> Layout.Builder.builder -> nprocs:int -> capacity:int -> t

(** Evaluates to [false] if the queue was full. *)
val enqueue : t -> Pid.t -> int -> bool Program.m

val dequeue : t -> Pid.t -> int option Program.m
