(** Ordering algorithms from the Section 4 object families (counter,
    fetch-and-increment, queue): each yields a configuration in which
    every process accesses the object once and the k-th process through
    returns k — the execution shape of Theorem 4.2, consumable by the
    Section 5 encoder. *)

open Memsim

type t = {
  name : string;
  cinit : Config.t;  (** every process runs the ordering algorithm once *)
}

val via_counter : Locks.Lock.factory -> model:Memory_model.t -> nprocs:int -> t
val via_fai : Locks.Lock.factory -> model:Memory_model.t -> nprocs:int -> t
val via_queue : Locks.Lock.factory -> model:Memory_model.t -> nprocs:int -> t
val all : Locks.Lock.factory -> model:Memory_model.t -> nprocs:int -> t list
