(** Size-directed shrinking to a minimal violating program.

    Greedy first-improvement descent: propose candidate edits in
    decreasing order of ambition — drop a whole process, drop an
    instruction, replace a strong operation by a weaker one, shrink
    constants and register indices, garbage-collect unused registers —
    and commit the first candidate on which the violated oracle still
    fires. Every edit strictly decreases the (size, weight) measure, so
    the descent terminates; it is deterministic, which is what makes a
    shrunk artifact replayable from its seed. *)

open Gen

(* Instruction weight: strong ops > spins > plain ops, plus constants
   and register indices, so every simplification rule below strictly
   decreases the per-instruction weight even when the size is equal. *)
let instr_weight = function
  | Cas (r, e, u) -> (80 + r + e + u : int)
  | Swap (r, v) -> 64 + r + v
  | Faa (r, d) -> 64 + r + d
  | Spin r -> 48 + r
  | Write (r, v) -> 32 + r + v
  | Read r -> 16 + r
  | Fence -> 16
  | Label -> 16

let weight t =
  Array.fold_left
    (fun acc p -> List.fold_left (fun acc i -> acc + instr_weight i) acc p)
    0 t.procs

(* Register count participates so the unused-register GC edit is also
   a strict decrease. *)
let measure t = (size t, weight t + t.nregs)

(* Strictly-simpler replacements for one instruction, most aggressive
   first. *)
let simplify_instr = function
  | Cas (r, _, u) -> [ Write (r, u); Read r ]
  | Swap (r, v) -> [ Write (r, v); Read r ]
  | Faa (r, d) -> [ Write (r, d); Read r ]
  | Spin r -> [ Read r ]
  | Write (r, v) ->
      (if v > 1 then [ Write (r, 1) ] else [])
      @ if r > 0 then [ Write (0, v) ] else []
  | Read r -> if r > 0 then [ Read 0 ] else []
  | Fence | Label -> []

let drop_nth n l = List.filteri (fun i _ -> i <> n) l
let replace_nth n x l = List.mapi (fun i y -> if i = n then x else y) l

let with_procs t procs = { t with procs }

let used_regs t =
  let used = Array.make t.nregs false in
  let mark r = used.(r) <- true in
  Array.iter
    (List.iter (function
      | Read r | Spin r -> mark r
      | Write (r, _) | Swap (r, _) | Faa (r, _) -> mark r
      | Cas (r, _, _) -> mark r
      | Fence | Label -> ()))
    t.procs;
  used

(* Candidate edits of [t], most ambitious first. *)
let candidates t : t list =
  let n = Array.length t.procs in
  let drop_proc =
    if n <= 1 then []
    else
      List.init n (fun p ->
          with_procs t
            (Array.of_list
               (List.filteri (fun i _ -> i <> p) (Array.to_list t.procs))))
  in
  let per_instr f =
    List.concat
      (List.init n (fun p ->
           List.concat
             (List.mapi (fun j i -> f p j i) t.procs.(p))))
  in
  let drop_instr =
    per_instr (fun p j _ ->
        let procs = Array.copy t.procs in
        procs.(p) <- drop_nth j procs.(p);
        [ with_procs t procs ])
  in
  let simplify =
    per_instr (fun p j i ->
        List.map
          (fun i' ->
            let procs = Array.copy t.procs in
            procs.(p) <- replace_nth j i' procs.(p);
            with_procs t procs)
          (simplify_instr i))
  in
  let gc_regs =
    (* drop the highest register when nothing touches it *)
    if t.nregs > 1 && not (used_regs t).(t.nregs - 1) then
      [ { t with nregs = t.nregs - 1 } ]
    else []
  in
  drop_proc @ drop_instr @ gc_regs @ simplify

(** Greedy minimization of [t] under [still_failing]; [t] itself must
    fail. [max_evals] caps oracle evaluations (each candidate costs one
    full oracle run). *)
let minimize ?(max_evals = 2_000) ~still_failing t =
  let evals = ref 0 in
  let rec descend t =
    let rec first = function
      | [] -> t
      | c :: rest ->
          if !evals >= max_evals then t
          else begin
            incr evals;
            assert (measure c < measure t);
            if still_failing c then descend c else first rest
          end
    in
    first (candidates t)
  in
  descend t
