(** Size-directed, deterministic shrinking to a minimal violating
    program: greedy first-improvement descent over strictly-decreasing
    edits (drop process, drop instruction, weaken strong ops, shrink
    constants/registers). *)

(** Minimize [t] under [still_failing] (which must hold of [t]).
    [max_evals] caps oracle evaluations. Deterministic. *)
val minimize :
  ?max_evals:int -> still_failing:(Gen.t -> bool) -> Gen.t -> Gen.t
