(** Seeded generation of small concurrent programs over the full
    [Program.t] grammar.

    Generated programs are kept as first-class instruction lists (the
    {!instr} AST) rather than closed [Program.t] values so the shrinker
    can edit them and the renderer can print them; {!compile} closes a
    program into a {!Litmus.Test.t} whose outcome is the tuple of
    per-process packed observation logs plus the final committed value
    of every shared register.

    Two deliberate restrictions keep every generated program a valid
    differential-oracle input:

    - values are small non-negatives (writes draw from [1..values],
      fetch-and-add increments from [1..2]), so packed observation logs
      fit comfortably in an OCaml [int];
    - spins use the always-satisfied predicate [fun v -> v >= 0]: they
      exercise the primitive-spin machinery (cached re-reads, blocking
      gates) without ever deadlocking, so generated programs terminate
      under every scheduler and exhaustive outcome sets are total. *)

type instr =
  | Read of int  (** load a shared register (by index) *)
  | Write of int * int  (** store a constant *)
  | Fence
  | Cas of int * int * int  (** [Cas (r, expect, update)] *)
  | Swap of int * int
  | Faa of int * int
  | Spin of int  (** always-satisfiable busy-wait: observes the value *)
  | Label  (** zero-cost annotation, exercises label flushing *)

type params = {
  procs : int;  (** process count *)
  len : int;  (** maximum instructions per process *)
  nregs : int;  (** shared registers *)
  values : int;  (** write values drawn from [1..values] *)
}

let default_params = { procs = 2; len = 5; nregs = 2; values = 2 }

type t = {
  seed : int;
  params : params;  (** generation parameters, for seed replay *)
  nregs : int;
  procs : instr list array;
}

let size t = Array.fold_left (fun acc p -> acc + List.length p) 0 t.procs
let nprocs t = Array.length t.procs

let equal a b = a.nregs = b.nregs && a.procs = b.procs

(* Weighted instruction choice: writes dominate so buffers stay busy
   (reordering is what the oracles are about); strong operations and
   spins appear often enough to keep their executor paths hot. *)
let gen_instr rng ~nregs ~values : instr =
  let reg () = Random.State.int rng nregs in
  let value () = 1 + Random.State.int rng values in
  match Random.State.int rng 100 with
  | n when n < 24 -> Read (reg ())
  | n when n < 56 -> Write (reg (), value ())
  | n when n < 68 -> Fence
  | n when n < 76 -> Cas (reg (), Random.State.int rng (values + 1), value ())
  | n when n < 82 -> Swap (reg (), value ())
  | n when n < 90 -> Faa (reg (), 1 + Random.State.int rng 2)
  | n when n < 96 -> Spin (reg ())
  | _ -> Label

let generate ~seed (params : params) : t =
  let rng = Random.State.make [| seed; 0xf022 |] in
  let nregs = max 1 params.nregs in
  let gen_proc () =
    let len = 1 + Random.State.int rng (max 1 params.len) in
    List.init len (fun _ -> gen_instr rng ~nregs ~values:(max 1 params.values))
  in
  {
    seed;
    params;
    nregs;
    procs = Array.init (max 1 params.procs) (fun _ -> gen_proc ());
  }

(* Observation packing: each observed value is appended in base 64, so
   a process's return value is its whole observation log. Bounded
   values (see the header) keep 10+ observations inside 63 bits. *)
let pack acc v = (acc * 64) + (v land 63)

(* The AST constructors shadow [Program.t]'s, so the compiler speaks
   to the DSL through a qualified alias rather than an open. *)
module P = Memsim.Program

let closure_proc (regs : Memsim.Reg.t array) instrs : Memsim.Program.t =
  let ( let* ) = P.( let* ) in
  let rec go acc = function
    | [] -> P.return acc
    | i :: rest -> (
        match i with
        | Read r ->
            let* v = P.read regs.(r) in
            go (pack acc v) rest
        | Write (r, v) ->
            let* () = P.write regs.(r) v in
            go acc rest
        | Fence ->
            let* () = P.fence in
            go acc rest
        | Cas (r, e, u) ->
            let* ok = P.cas regs.(r) ~expect:e ~update:u in
            go (pack acc (Bool.to_int ok)) rest
        | Swap (r, v) ->
            let* old = P.swap regs.(r) v in
            go (pack acc old) rest
        | Faa (r, d) ->
            let* old = P.faa regs.(r) ~add:d in
            go (pack acc old) rest
        | Spin r ->
            let* v = P.await regs.(r) (fun v -> v >= 0) in
            go (pack acc v) rest
        | Label ->
            let* () = P.label "fuzz" in
            go acc rest)
  in
  P.run (go 0 instrs)

(* The AST is first-order, so it compiles to the flat IR {e
   constructively} — one instruction per constructor, acc-mode return
   (the packed log is the result, [Instr.pack] being byte-compatible
   with [pack] above, and flat spins share the generated predicate's
   truth table). Falls back to the closure build if an operand ever
   outgrows its packed field — generated values are small, so this is
   belt-and-braces, but it keeps the generator total. *)
let compile_proc (regs : Memsim.Reg.t array) instrs : Memsim.Program.t =
  let module I = Memsim.Instr in
  match
    let b = I.create () in
    List.iter
      (fun i ->
        match i with
        | Read r -> I.emit_read b regs.(r)
        | Write (r, v) -> I.emit_write b regs.(r) v
        | Fence -> I.emit_fence b
        | Cas (r, e, u) -> I.emit_cas b regs.(r) ~expect:e ~update:u
        | Swap (r, v) -> I.emit_swap b regs.(r) v
        | Faa (r, d) -> I.emit_faa b regs.(r) ~add:d
        | Spin r -> I.emit_spin b regs.(r)
        | Label -> I.emit_label b "fuzz")
      instrs;
    I.emit_ret b;
    I.finish b
  with
  | code -> P.flat code
  | exception Invalid_argument _ -> closure_proc regs instrs

let name t = Fmt.str "FUZZ#%d" t.seed

let compile ?(flat = true) t : Litmus.Test.t =
  let proc = if flat then compile_proc else closure_proc in
  {
    Litmus.Test.name = name t;
    description =
      Fmt.str "generated: seed %d, %d procs, %d regs" t.seed (nprocs t) t.nregs;
    nregs = t.nregs;
    programs = (fun regs -> Array.map (proc regs) t.procs);
    observed = (fun regs -> Array.to_list regs);
  }

(* Fence sites, AST-level: one site per literal [Fence] instruction,
   counted per process. The synthesizer's global numbering assigns
   process [p] the range starting at the prefix sum of earlier
   processes' counts — same convention as [Litmus.Test.with_fence_mask],
   so masking here and masking the compiled test agree site-for-site. *)
let fence_sites t =
  Array.map
    (List.fold_left
       (fun acc i -> match i with Fence -> acc + 1 | _ -> acc)
       0)
    t.procs

let with_fence_mask ~keep t =
  let counts = fence_sites t in
  let offset = Array.make (Array.length counts) 0 in
  for p = 1 to Array.length counts - 1 do
    offset.(p) <- offset.(p - 1) + counts.(p - 1)
  done;
  {
    t with
    procs =
      Array.mapi
        (fun p instrs ->
          let site = ref offset.(p) in
          List.filter
            (fun i ->
              match i with
              | Fence ->
                  let s = !site in
                  incr site;
                  keep s
              | _ -> true)
            instrs)
        t.procs;
  }

let strip_fences t = with_fence_mask ~keep:(fun _ -> false) t

(* Fence saturation: a fence after every plain write. Strong operations
   already carry an implicit barrier, so saturating the writes is what
   collapses every buffered model onto SC. *)
let saturate t =
  {
    t with
    procs =
      Array.map
        (List.concat_map (function
          | Write _ as w -> [ w; Fence ]
          | i -> [ i ]))
        t.procs;
  }

(* Full saturation: a fence before every instruction plus a trailing
   one. Per-write fences are enough for the buffered models (only
   writes reorder), but not for the view-based ones, where a read with
   a stale view is itself a relaxation: collapsing RA onto SC needs
   reads bracketed by fences too. *)
let saturate_full t =
  {
    t with
    procs =
      Array.map
        (fun instrs -> List.concat_map (fun i -> [ Fence; i ]) instrs @ [ Fence ])
        t.procs;
  }
