(** The seven differential oracles: model nesting (SC ⊆ TSO ⊆ PSO and
    SC ⊆ SRA ⊆ RA), engine parity (dfs / parallel / POR), fence
    saturation (fences after every write collapse buffered models onto
    SC; fences around every instruction collapse the view-based RA/SRA
    models too), random-schedule soundness (under every model,
    view-based included), and bounded saturation (a reorder bound at
    least the max buffer occupancy certifies saturation and matches
    the unbounded outcome set byte-for-byte). See the implementation
    header for the precise claims. *)

open Memsim

type violation = {
  oracle : string;  (** short tag, e.g. ["nesting:SC⊆TSO"] *)
  detail : string;
  prog : Gen.t;
}

type verdict =
  | Ok
  | Skipped of string  (** some exploration hit a bound *)
  | Violation of violation

type config = {
  model : Memory_model.t;  (** model checked by oracles 2 and 4 *)
  jobs : int list;  (** parallel-engine domain counts for parity *)
  random_seeds : int;  (** random schedules per model for oracle 4 *)
  max_states : int;  (** per-exploration safety cap *)
}

val default_config : config
val pp_violation : violation Fmt.t

(** Run all the oracles on one program. Deterministic. *)
val check : ?config:config -> Gen.t -> verdict

(** Does the program still violate an oracle with this tag prefix? The
    property the shrinker preserves. *)
val still_violates : ?config:config -> oracle_prefix:string -> Gen.t -> bool
