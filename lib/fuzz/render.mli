(** Rendering of fuzz programs and self-contained, replayable
    counterexample artifacts. *)

val pp_instr : Gen.instr Fmt.t
val pp_prog : Gen.t Fmt.t

(** The [fencelab fuzz] invocation reproducing the program's original
    (pre-shrink) form from its seed and parameters. *)
val replay_command : Gen.t -> string

(** Artifact text for a violation: original and shrunk programs,
    violated oracle, per-model outcome sets, replay command. *)
val artifact : Oracle.violation -> shrunk:Gen.t -> string
