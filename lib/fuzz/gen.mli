(** Seeded generation of small concurrent programs over the full
    [Program.t] grammar (reads, writes, fences, cas/swap/faa, spins,
    labels), kept as first-class instruction lists so the shrinker can
    edit them. Generated spins are always satisfiable, so every
    generated program terminates under every scheduler — see the
    implementation header. *)

type instr =
  | Read of int  (** load a shared register (by index) *)
  | Write of int * int  (** store a constant *)
  | Fence
  | Cas of int * int * int  (** [Cas (r, expect, update)] *)
  | Swap of int * int
  | Faa of int * int
  | Spin of int  (** always-satisfiable busy-wait: observes the value *)
  | Label  (** zero-cost annotation, exercises label flushing *)

type params = {
  procs : int;  (** process count *)
  len : int;  (** maximum instructions per process *)
  nregs : int;  (** shared registers *)
  values : int;  (** write values drawn from [1..values] *)
}

val default_params : params

type t = {
  seed : int;
  params : params;  (** generation parameters, for seed replay *)
  nregs : int;
  procs : instr list array;
}

(** Total instruction count across processes — the shrinker's primary
    size metric. *)
val size : t -> int

val nprocs : t -> int

(** Structural equality of the program text (seed/params ignored). *)
val equal : t -> t -> bool

(** Deterministic: same seed and params, same program. *)
val generate : seed:int -> params -> t

val name : t -> string

(** Close the program into a litmus test whose outcomes are the packed
    per-process observation logs plus every register's final value.
    [flat] (default [true]) emits {!Memsim.Instr} flat code directly —
    the AST is first-order, so the translation is constructive;
    [~flat:false] builds the closure tree instead (the reference side
    of the compiled-vs-closure parity suite). The two builds are
    observation-identical by construction. *)
val compile : ?flat:bool -> t -> Litmus.Test.t

(** Insert a fence after every plain write (oracle 3's transform). *)
val saturate : t -> t

(** Insert a fence before every instruction and a trailing one — the
    stronger transform that also collapses the view-based models onto
    SC (fenced reads, not just fenced writes). *)
val saturate_full : t -> t

(** Per-process counts of literal [Fence] instructions — the program's
    fence sites, numbered globally by prefix-sum offsets exactly as
    [Litmus.Test.with_fence_mask] numbers the compiled test. *)
val fence_sites : t -> int array

(** Keep only the fence sites selected by [keep] (global numbering as
    in {!fence_sites}); a literal AST edit, so the full mask
    round-trips to a structurally equal program. *)
val with_fence_mask : keep:(int -> bool) -> t -> t

(** Drop every fence — [with_fence_mask ~keep:(fun _ -> false)]. *)
val strip_fences : t -> t
