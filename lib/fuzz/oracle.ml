(** The seven differential oracles, run per generated program.

    Every oracle is an inclusion or agreement claim between two
    independent ways of enumerating behaviours, so a violation always
    means a real bug somewhere — in the simulator, an engine, a
    reduction, or a scheduler — never a flaky environment:

    1. {b model nesting} — the exhaustive outcome set under SC is
       contained in TSO's, and TSO's in PSO's (via
       {!Litmus.Test.separation}); the operational content of the
       paper's SC ⊆ TSO ⊆ PSO behaviour inclusion.
    2. {b engine parity} — [Explore.dfs], [Mc.run ~engine:(`Parallel j)]
       and the POR-on run agree on the outcome set under the checked
       model.
    3. {b fence saturation} — a fence after every write collapses the
       TSO and PSO outcome sets onto SC's (fence insertion, made
       operational).
    4. {b random-schedule soundness} — every outcome an online
       {!Memsim.Scheduler.random} run reaches is in the exhaustive set.
    5. {b bounded saturation} — with a reorder bound K at least the
       maximum total buffer occupancy the unbounded exploration ever
       reaches, the bounded engine can never charge past its budget:
       it must certify saturation ([bound_exact]) and reproduce the
       unbounded outcome set byte-for-byte. This is the off-by-one
       trap in the budget accounting, fuzzed rather than unit-tested.
    6. {b view-model nesting} — SC's outcome set is contained in SRA's
       and SRA's in RA's: the view-based half of the model order, with
       SRA's append-only discipline sitting strictly between SC and
       unrestricted RA insertion.
    7. {b full-fence collapse} — a fence before every instruction (and
       a trailing one) collapses the RA and SRA outcome sets onto SC's.
       Per-write saturation (oracle 3) is not enough here: a read with
       a stale view is itself a relaxation, so the reads need fencing
       too ({!Gen.saturate_full}).

    All claims are over total outcome sets, so they are only asserted
    when no exploration was truncated; a truncated program is reported
    as skipped, never as passed. *)

open Memsim

type violation = {
  oracle : string;  (** short tag, e.g. ["nesting:SC⊆TSO"] *)
  detail : string;
  prog : Gen.t;
}

type verdict =
  | Ok
  | Skipped of string  (** some exploration hit a bound *)
  | Violation of violation

type config = {
  model : Memory_model.t;  (** model checked by oracles 2 and 4 *)
  jobs : int list;  (** parallel-engine domain counts for parity *)
  random_seeds : int;  (** random schedules per model for oracle 4 *)
  max_states : int;  (** per-exploration safety cap *)
}

let default_config =
  { model = Memory_model.Pso; jobs = [ 1; 2; 4 ]; random_seeds = 3;
    max_states = 300_000 }

let pp_violation ppf v =
  Fmt.pf ppf "%s: %s violates %s (%s)" (Gen.name v.prog) (Gen.name v.prog)
    v.oracle v.detail

let outcomes run = run.Litmus.Test.outcomes

let pp_outcomes ppf os =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.semi Litmus.Test.pp_outcome) os

(* Exhaustive run; [None] when truncated (the caller skips). *)
let exhaustive ?engine ?por ?reorder_bound ~max_states test ~model =
  let r = Litmus.Test.run ?engine ?por ?reorder_bound ~max_states test ~model in
  if r.Litmus.Test.stats.Explore.truncated then None else Some r

let check ?(config = default_config) prog : verdict =
  let test = Gen.compile prog in
  let exception Skip of string in
  let exception Fail of string * string in
  let fail oracle fmt = Fmt.kstr (fun d -> raise (Fail (oracle, d))) fmt in
  let run ?engine ?por ?reorder_bound test ~model =
    match
      exhaustive ?engine ?por ?reorder_bound ~max_states:config.max_states test
        ~model
    with
    | Some r -> r
    | None ->
        raise (Skip (Fmt.str "truncated at %d states under %a" config.max_states
                       Memory_model.pp model))
  in
  try
    (* oracle 1: model nesting over the exhaustive sets *)
    let sc = run test ~model:Memory_model.Sc in
    let tso = run test ~model:Memory_model.Tso in
    let pso = run test ~model:Memory_model.Pso in
    let nesting tag ~stronger ~weaker =
      match Litmus.Test.separation ~stronger:weaker ~weaker:stronger with
      | [] -> ()
      | missing ->
          fail ("nesting:" ^ tag) "%a reachable under %a but not %a"
            pp_outcomes missing Memory_model.pp stronger.Litmus.Test.model
            Memory_model.pp weaker.Litmus.Test.model
    in
    nesting "SC⊆TSO" ~stronger:sc ~weaker:tso;
    nesting "TSO⊆PSO" ~stronger:tso ~weaker:pso;
    (* oracle 6: the view-based half of the model order *)
    let sra = run test ~model:Memory_model.Sra in
    let ra = run test ~model:Memory_model.Ra in
    nesting "SC⊆SRA" ~stronger:sc ~weaker:sra;
    nesting "SRA⊆RA" ~stronger:sra ~weaker:ra;
    (* oracle 2: engine parity under the configured model *)
    let reference =
      match config.model with
      | Memory_model.Sc -> sc
      | Memory_model.Tso -> tso
      | Memory_model.Pso | Memory_model.Rmo -> pso
      | Memory_model.Ra -> ra
      | Memory_model.Sra -> sra
    in
    let parity tag r =
      if outcomes r <> outcomes reference then
        fail ("parity:" ^ tag) "dfs %a vs %s %a" pp_outcomes
          (outcomes reference) tag pp_outcomes (outcomes r)
    in
    List.iter
      (fun j ->
        parity (Fmt.str "j=%d" j)
          (run ~engine:(`Parallel j) test ~model:reference.Litmus.Test.model))
      config.jobs;
    parity "por"
      (run ~engine:(`Parallel 1) ~por:true test
         ~model:reference.Litmus.Test.model);
    (* oracle 3: fence saturation collapses TSO/PSO onto SC *)
    let sat = Gen.compile (Gen.saturate prog) in
    let sat_sc = run sat ~model:Memory_model.Sc in
    List.iter
      (fun model ->
        let r = run sat ~model in
        if outcomes r <> outcomes sat_sc then
          fail
            (Fmt.str "saturation:%a" Memory_model.pp model)
            "saturated %a %a vs SC %a" Memory_model.pp model pp_outcomes
            (outcomes r) pp_outcomes (outcomes sat_sc))
      [ Memory_model.Tso; Memory_model.Pso ];
    (* oracle 7: full fencing collapses the view models onto SC *)
    let sat_full = Gen.compile (Gen.saturate_full prog) in
    let sat_full_sc = run sat_full ~model:Memory_model.Sc in
    List.iter
      (fun model ->
        let r = run sat_full ~model in
        if outcomes r <> outcomes sat_full_sc then
          fail
            (Fmt.str "saturation:%a" Memory_model.pp model)
            "fully fenced %a %a vs SC %a" Memory_model.pp model pp_outcomes
            (outcomes r) pp_outcomes (outcomes sat_full_sc))
      [ Memory_model.Ra; Memory_model.Sra ];
    (* oracle 4: random schedules only reach exhaustive outcomes *)
    let regs, _ = Litmus.Test.configure test ~model:config.model in
    let observe final =
      {
        Litmus.Test.returns =
          List.init (Config.nprocs final) (fun p ->
              Option.value ~default:(-1) (Config.final_value final p));
        finals = List.map (Config.read_mem final) (test.Litmus.Test.observed regs);
      }
    in
    List.iter
      (fun (model, exh) ->
        let _, cfg = Litmus.Test.configure test ~model in
        for k = 0 to config.random_seeds - 1 do
          let seed = (prog.Gen.seed * 1_000) + k in
          match Scheduler.random ~seed cfg with
          | exception Scheduler.Stuck (_, msg) ->
              (* generated programs are straight-line + satisfiable
                 spins: a stuck scheduler is itself a soundness bug *)
              fail "random:stuck" "seed %d under %a: %s" seed Memory_model.pp
                model msg
          | _, final ->
              let o = observe final in
              if not (Litmus.Test.admits exh o) then
                fail "random:unsound" "seed %d under %a reached %a outside %a"
                  seed Memory_model.pp model Litmus.Test.pp_outcome o
                  pp_outcomes (outcomes exh)
        done)
      [
        (Memory_model.Sc, sc);
        (Memory_model.Tso, tso);
        (Memory_model.Pso, pso);
        (Memory_model.Ra, ra);
        (Memory_model.Sra, sra);
      ];
    (* oracle 5: a reorder bound at least the max total buffer occupancy
       can never be charged past (every in-flight reordering is a
       pending entry), so the bounded run must certify saturation and
       agree with the unbounded outcome set byte-for-byte *)
    let occupancy_bound model =
      let _, cfg = Litmus.Test.configure test ~model in
      let occ = ref 0 in
      let watch c =
        let o =
          Array.fold_left
            (fun acc (st : Config.pstate) -> acc + Wbuf.size st.Config.wb)
            0 c.Config.procs
        in
        if o > !occ then occ := o;
        None
      in
      let r =
        Mc.run ~engine:`Dfs ~max_states:config.max_states ~check:watch
          ~monitor:(fun () _ -> Stdlib.Ok ())
          ~init:() cfg
      in
      if r.Explore.stats.Explore.truncated then
        raise
          (Skip (Fmt.str "occupancy scan truncated at %d states under %a"
                   config.max_states Memory_model.pp model));
      !occ
    in
    List.iter
      (fun ((model : Memory_model.t), exh) ->
        let k = occupancy_bound model in
        let b = run ~reorder_bound:(`K k) test ~model in
        if not b.Litmus.Test.bound_exact then
          fail
            (Fmt.str "bounded:uncertified:%a" Memory_model.pp model)
            "K=%d >= max occupancy yet %d bound hits — budget over-charges" k
            b.Litmus.Test.stats.Explore.bound_hits;
        if outcomes b <> outcomes exh then
          fail
            (Fmt.str "bounded:outcomes:%a" Memory_model.pp model)
            "K=%d %a vs unbounded %a" k pp_outcomes (outcomes b) pp_outcomes
            (outcomes exh))
      [ (Memory_model.Tso, tso); (Memory_model.Pso, pso) ];
    Ok
  with
  | Skip reason -> Skipped reason
  | Fail (oracle, detail) -> Violation { oracle; detail; prog }

(** Does [prog] still violate an oracle whose tag starts with
    [oracle_prefix]? The shrinker's preserved property. *)
let still_violates ?(config = default_config) ~oracle_prefix prog =
  match check ~config prog with
  | Violation v ->
      String.length v.oracle >= String.length oracle_prefix
      && String.sub v.oracle 0 (String.length oracle_prefix) = oracle_prefix
  | Ok | Skipped _ -> false
