(** Rendering of fuzz programs and violation artifacts.

    An artifact is self-contained and replayable: it carries the litmus
    rendering of the (shrunk) program, the violated oracle with its
    detail, the per-model exhaustive outcome sets, and the exact
    generator invocation ([seed] plus parameters) that reproduces the
    original program, so every counterexample doubles as a permanent
    regression case. *)

open Memsim

let pp_instr ppf : Gen.instr -> unit = function
  | Gen.Read r -> Fmt.pf ppf "load x%d" r
  | Gen.Write (r, v) -> Fmt.pf ppf "x%d := %d" r v
  | Gen.Fence -> Fmt.pf ppf "fence"
  | Gen.Cas (r, e, u) -> Fmt.pf ppf "cas x%d %d->%d" r e u
  | Gen.Swap (r, v) -> Fmt.pf ppf "swap x%d %d" r v
  | Gen.Faa (r, d) -> Fmt.pf ppf "faa x%d +%d" r d
  | Gen.Spin r -> Fmt.pf ppf "spin x%d" r
  | Gen.Label -> Fmt.pf ppf "label"

let pp_prog ppf (t : Gen.t) =
  Fmt.pf ppf "@[<v>%s: %d procs over x0..x%d@," (Gen.name t)
    (Gen.nprocs t) (t.Gen.nregs - 1);
  Array.iteri
    (fun p instrs ->
      Fmt.pf ppf "  P%d: %a@," p (Fmt.list ~sep:(Fmt.any "; ") pp_instr) instrs)
    t.Gen.procs;
  Fmt.pf ppf "@]"

(** The generator invocation reproducing the program's {e original}
    (pre-shrink) form; shrinking is deterministic, so seed + parameters
    are a complete replay recipe. *)
let replay_command (t : Gen.t) =
  let p = t.Gen.params in
  Fmt.str
    "fencelab fuzz --seed %d --count 1 --procs %d --len %d --regs %d \
     --values %d"
    t.Gen.seed p.Gen.procs p.Gen.len p.Gen.nregs p.Gen.values

let outcome_sets (t : Gen.t) =
  let test = Gen.compile t in
  List.map
    (fun model -> Litmus.Test.run test ~model)
    [ Memory_model.Sc; Memory_model.Tso; Memory_model.Pso ]

(** Self-contained artifact for a violation, with the shrunk program. *)
let artifact (v : Oracle.violation) ~(shrunk : Gen.t) =
  Fmt.str
    "@[<v>fuzz counterexample: oracle %s@,detail: %s@,@,original (%d \
     instrs):@,%a@,shrunk (%d instrs):@,%a@,exhaustive outcome sets of the \
     shrunk program:@,%a@,replay: %s (then shrink; shrinking is \
     deterministic)@]@."
    v.Oracle.oracle v.Oracle.detail (Gen.size v.Oracle.prog) pp_prog
    v.Oracle.prog (Gen.size shrunk) pp_prog shrunk
    (Fmt.list (fun ppf r -> Fmt.pf ppf "  %a" Litmus.Test.pp_run r))
    (outcome_sets shrunk)
    (replay_command v.Oracle.prog)
