(** [Fuzz] — differential fuzzing of programs, models and engines.

    Facade over the subsystem's pieces:

    - {!Gen}: deterministic, seed-driven program generation over the
      full [Program.t] grammar;
    - {!Oracle}: the differential oracles (model nesting across the
      buffered and view-based halves of the zoo, engine parity, fence
      saturation, random-schedule soundness, bounded saturation);
    - {!Shrink}: size-directed minimization of violating programs;
    - {!Render}: litmus renderings and replayable artifacts.

    {!run} drives a whole campaign: programs [seed, seed+1, ...,
    seed+count-1] through all the oracles, shrinking every violation
    to a minimal counterexample. Fully deterministic for a fixed seed
    and configuration — same programs, same outcome sets, same summary
    line — which is what makes any failure a permanent regression
    case. *)

module Gen = Gen
module Shrink = Shrink
module Oracle = Oracle
module Render = Render

type finding = {
  violation : Oracle.violation;
  shrunk : Gen.t;
  artifact : string;
}

type summary = {
  seed : int;
  count : int;
  checked : int;  (** programs with every oracle fully evaluated *)
  skipped : (int * string) list;  (** (seed, reason) for truncated runs *)
  findings : finding list;
}

let pp_summary ppf s =
  Fmt.pf ppf "fuzz: seed=%d count=%d checked=%d skipped=%d violations=%d: %s"
    s.seed s.count s.checked
    (List.length s.skipped)
    (List.length s.findings)
    (match s.findings with
    | [] -> "OK"
    | f :: _ -> Fmt.str "FAIL (first: %s)" f.violation.Oracle.oracle)

(* Shrink preserving the violated oracle family (the tag up to ':'),
   so e.g. a nesting violation stays a nesting violation while the
   program shrinks, even if the exact model pair shifts. *)
let oracle_family tag =
  match String.index_opt tag ':' with
  | Some i -> String.sub tag 0 (i + 1)
  | None -> tag

let shrink_finding ?(config = Oracle.default_config) (v : Oracle.violation) :
    finding =
  let prefix = oracle_family v.Oracle.oracle in
  let shrunk =
    Shrink.minimize
      ~still_failing:(Oracle.still_violates ~config ~oracle_prefix:prefix)
      v.Oracle.prog
  in
  { violation = v; shrunk; artifact = Render.artifact v ~shrunk }

let run ?tel ?(config = Oracle.default_config) ?(params = Gen.default_params)
    ?on_program ~seed ~count () : summary =
  (* Campaign telemetry: the loop is sequential, so every bump lands on
     worker slot 0. "programs" is the sampler's primary rate counter
     (programs/s); the rest split it by oracle outcome. With no hub
     supplied the bumps go to a private, unread hub — plain int adds. *)
  let tel =
    match tel with Some h -> h | None -> Telemetry.Hub.create ~workers:1 ()
  in
  let c_programs = Telemetry.Hub.counter tel "programs" in
  let c_checked = Telemetry.Hub.counter tel "checked" in
  let c_skipped = Telemetry.Hub.counter tel "skipped" in
  let c_violations = Telemetry.Hub.counter tel "violations" in
  let checked = ref 0 in
  let skipped = ref [] in
  let findings = ref [] in
  for i = 0 to count - 1 do
    let s = seed + i in
    let prog = Gen.generate ~seed:s params in
    Telemetry.Cells.incr c_programs ~worker:0;
    (match Oracle.check ~config prog with
    | Oracle.Ok ->
        incr checked;
        Telemetry.Cells.incr c_checked ~worker:0
    | Oracle.Skipped reason ->
        skipped := (s, reason) :: !skipped;
        Telemetry.Cells.incr c_skipped ~worker:0
    | Oracle.Violation v ->
        findings := shrink_finding ~config v :: !findings;
        Telemetry.Cells.incr c_violations ~worker:0);
    match on_program with Some f -> f i | None -> ()
  done;
  {
    seed;
    count;
    checked = !checked;
    skipped = List.rev !skipped;
    findings = List.rev !findings;
  }
