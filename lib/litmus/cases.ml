(** The classic litmus tests, phrased in the simulator's DSL.

    Naming follows the memory-model literature (SB = store buffering,
    MP = message passing, LB = load buffering, 2+2W = double write).
    Expected separations, which experiment E7 verifies mechanically:

    - {b SB}: [r0 = r1 = 0] reachable under TSO/PSO/RMO, not SC.
      Separates SC from everything buffered (store→load reordering).
    - {b SB+fences}: fences between write and read forbid it again
      under every model.
    - {b MP}: observer sees [flag = 1] but [data = 0] — needs the two
      {e writes} to swap, so reachable under PSO/RMO but {e not} TSO.
      This is the paper's separation: write reordering vs. not.
    - {b MP+fence}: a fence between the writes forbids it under PSO
      too (that fence is what the paper's tradeoff charges for).
    - {b 2+2W}: both registers end with the {e first} thread's values —
      again write-reordering only: PSO/RMO yes, TSO/SC no.
    - {b SB+rmw}: fetch-and-store instead of plain writes; the
      implicit barrier of strong operations forbids [0,0] again
      everywhere (the §1/§6 remark made operational).
    - {b WRC}: write-to-read causality through a middle thread; the
      final reader missing the relayed write is forbidden in every
      multi-copy-atomic write-buffer model.
    - {b LB}: both loads see the other thread's (program-later) store.
      Unreachable in every write-buffer model (ours never executes a
      load before an earlier load/store of the same thread); recorded
      to document where our RMO stops short of full RMO (see
      {!Memsim.Memory_model}). *)

open Memsim
open Program

let two_threads f g = [| run f; run g |]

(* Encode two observed values into one return: r0*10 + r1 keeps the
   outcome tuples compact and readable. *)
let pack a b = (10 * a) + b

let sb : Test.t =
  {
    name = "SB";
    description = "store buffering: w x; r y || w y; r x";
    nregs = 2;
    programs =
      (fun r ->
        two_threads
          (let* () = write r.(0) 1 in
           let* a = read r.(1) in
           return a)
          (let* () = write r.(1) 1 in
           let* b = read r.(0) in
           return b));
    observed = (fun _ -> []);
  }

let sb_fenced : Test.t =
  {
    name = "SB+fences";
    description = "store buffering with a fence between write and read";
    nregs = 2;
    programs =
      (fun r ->
        two_threads
          (let* () = write r.(0) 1 in
           let* () = fence in
           let* a = read r.(1) in
           return a)
          (let* () = write r.(1) 1 in
           let* () = fence in
           let* b = read r.(0) in
           return b));
    observed = (fun _ -> []);
  }

let mp : Test.t =
  {
    name = "MP";
    description = "message passing: w data; w flag || r flag; r data";
    nregs = 2;
    programs =
      (fun r ->
        let data = r.(0) and flag = r.(1) in
        two_threads
          (let* () = write data 1 in
           let* () = write flag 1 in
           let* () = fence in
           return 0)
          (let* f = read flag in
           let* d = read data in
           return (pack f d)));
    observed = (fun _ -> []);
  }

let mp_fenced : Test.t =
  {
    name = "MP+fence";
    description = "message passing with a fence between the two writes";
    nregs = 2;
    programs =
      (fun r ->
        let data = r.(0) and flag = r.(1) in
        two_threads
          (let* () = write data 1 in
           let* () = fence in
           let* () = write flag 1 in
           let* () = fence in
           return 0)
          (let* f = read flag in
           let* d = read data in
           return (pack f d)));
    observed = (fun _ -> []);
  }

let two_plus_two_w : Test.t =
  {
    name = "2+2W";
    description = "w x 1; w y 2 || w y 1; w x 2 — can both end at 1?";
    nregs = 2;
    programs =
      (fun r ->
        two_threads
          (let* () = write r.(0) 1 in
           let* () = write r.(1) 2 in
           let* () = fence in
           return 0)
          (let* () = write r.(1) 1 in
           let* () = write r.(0) 2 in
           let* () = fence in
           return 0));
    observed = (fun r -> [ r.(0); r.(1) ]);
  }

let lb : Test.t =
  {
    name = "LB";
    description = "load buffering: r x; w y || r y; w x — both loads 1?";
    nregs = 2;
    programs =
      (fun r ->
        two_threads
          (let* a = read r.(0) in
           let* () = write r.(1) 1 in
           let* () = fence in
           return a)
          (let* b = read r.(1) in
           let* () = write r.(0) 1 in
           let* () = fence in
           return b));
    observed = (fun _ -> []);
  }

let iriw : Test.t =
  {
    name = "IRIW";
    description =
      "independent reads of independent writes: readers disagree on the \
       order of two writes";
    nregs = 2;
    programs =
      (fun r ->
        [|
          run (let* () = write r.(0) 1 in let* () = fence in return 0);
          run (let* () = write r.(1) 1 in let* () = fence in return 0);
          run
            (let* a = read r.(0) in
             let* () = fence in
             let* b = read r.(1) in
             return (pack a b));
          run
            (let* c = read r.(1) in
             let* () = fence in
             let* d = read r.(0) in
             return (pack c d));
        |]);
    observed = (fun _ -> []);
  }

let sb_rmw : Test.t =
  {
    name = "SB+rmw";
    description =
      "store buffering with fetch-and-store instead of plain writes: the \
       implicit barrier restores SC";
    nregs = 2;
    programs =
      (fun r ->
        two_threads
          (let* _ = swap r.(0) 1 in
           let* a = read r.(1) in
           return a)
          (let* _ = swap r.(1) 1 in
           let* b = read r.(0) in
           return b));
    observed = (fun _ -> []);
  }

let wrc : Test.t =
  {
    name = "WRC";
    description =
      "write-to-read causality: w x || r x; w y || r y; r x — the final \
       reader cannot miss the first write";
    nregs = 2;
    programs =
      (fun r ->
        let x = r.(0) and y = r.(1) in
        [|
          run
            (let* () = write x 1 in
             let* () = fence in
             return 0);
          run
            (let* a = read x in
             let* () = write y 1 in
             let* () = fence in
             return a);
          run
            (let* b = read y in
             let* () = fence in
             let* c = read x in
             return (pack b c));
        |]);
    observed = (fun _ -> []);
  }

let corr : Test.t =
  {
    name = "CoRR";
    description =
      "coherence of read-read: two reads of one location never observe \
       its writes out of order";
    nregs = 1;
    programs =
      (fun r ->
        two_threads
          (let* () = write r.(0) 1 in
           let* () = write r.(0) 2 in
           let* () = fence in
           return 0)
          (let* a = read r.(0) in
           let* b = read r.(0) in
           return (pack a b)));
    observed = (fun r -> [ r.(0) ]);
  }

let all =
  [ sb; sb_fenced; sb_rmw; mp; mp_fenced; two_plus_two_w; lb; wrc; iriw; corr ]

(** The outcome each test is "about", for report tables. *)
let interesting_outcome (t : Test.t) : Test.outcome =
  match t.Test.name with
  | "SB" | "SB+fences" | "SB+rmw" -> { Test.returns = [ 0; 0 ]; finals = [] }
  | "MP" | "MP+fence" -> { Test.returns = [ 0; pack 1 0 ]; finals = [] }
  | "2+2W" -> { Test.returns = [ 0; 0 ]; finals = [ 1; 1 ] }
  | "LB" -> { Test.returns = [ 1; 1 ]; finals = [] }
  | "WRC" ->
      (* middle thread relayed the write, final reader missed it *)
      { Test.returns = [ 0; 1; pack 1 0 ]; finals = [] }
  | "IRIW" ->
      (* readers see the two writes in opposite orders *)
      { Test.returns = [ 0; 0; pack 1 0; pack 1 0 ]; finals = [] }
  | "CoRR" ->
      (* second read travels backwards: 2 then 1 *)
      { Test.returns = [ 0; pack 2 1 ]; finals = [ 2 ] }
  | _ -> { Test.returns = []; finals = [] }
