(** Litmus-test harness: exhaustive outcome enumeration per memory
    model — the operational content of "separating memory models". *)

open Memsim

type t = {
  name : string;
  description : string;
  nregs : int;  (** shared registers [x0..], all initially 0 *)
  programs : Reg.t array -> Program.t array;
  observed : Reg.t array -> Reg.t list;  (** registers in the outcome *)
}

type outcome = { returns : int list; finals : int list }

val pp_outcome : outcome Fmt.t

type run = {
  test : t;
  model : Memory_model.t;
  outcomes : outcome list;  (** sorted *)
  stats : Explore.stats;
  reorder_bound : int option;
      (** the (final) reorder bound enumerated under; [None] =
          unbounded *)
  bound_exact : bool;
      (** with a bound: the run certified saturation, so the outcome
          set is complete. A bounded, non-exact run is a subset and
          {!pp_run} flags it as ["reorder-bound K subset"]. *)
}

(** [compile] (default [true]) is {!Memsim.Config.make}'s flag: flat
    translation / continuation sharing on, or the raw
    closure-interpreter path ([--no-compile], and the parity suite's
    reference side). Semantics-invisible either way. *)
val configure :
  ?compile:bool -> t -> model:Memory_model.t -> Reg.t array * Config.t

(** Enumerate all reachable outcomes under the model. [engine] selects
    the explorer ([`Dfs] default, [`Parallel j] for the multicore
    engine); [por] preserves the outcome set while visiting fewer
    states. [tel] plugs a {!Telemetry.Hub.t} into the exploration for
    live progress and stats (see {!Mc.run}). [reorder_bound] restricts
    the enumeration to executions within a reorder budget ([`K k]) or
    iteratively deepens until the set saturates ([`Deepen], which
    under [`Dfs] deepens on one domain). *)
val run :
  ?tel:Telemetry.Hub.t -> ?compile:bool ->
  ?max_states:int -> ?engine:Mc.engine -> ?por:bool ->
  ?reorder_bound:[ `K of int | `Deepen ] ->
  t -> model:Memory_model.t -> run

val admits : run -> outcome -> bool
val pp_run : run Fmt.t

(** Why an all-model sweep must skip this cell, if it must:
    [Some "reorder bound undefined on view models"] when a reorder
    bound is set and the model is view-based (no write buffer to
    meter), [None] otherwise. Sweeps mark the cell explicitly instead
    of dropping the row. *)
val skip_reason :
  ?reorder_bound:[ `K of int | `Deepen ] -> Memory_model.t -> string option

(** Outcomes of [weaker] not reachable under [stronger]. *)
val separation : stronger:run -> weaker:run -> outcome list

(** Per-process fence-site counts (one sequential SC execution; valid
    for tests whose fences execute in fixed program-text order). *)
val fence_sites : t -> int array

(** Re-instantiate with a subset of fences under a global site
    numbering (process [p]'s sites start at the prefix sum of earlier
    processes' counts); site [i] survives iff [keep i], and [marker i]
    tags every site with a zero-cost label. Full mask, no marker ⇒
    extensionally the same test. *)
val with_fence_mask :
  ?marker:(int -> string) -> keep:(int -> bool) -> t -> t
