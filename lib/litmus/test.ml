(** Litmus-test harness: exhaustive outcome enumeration per memory model.

    A litmus test is a tiny multi-threaded program whose set of
    reachable final observations distinguishes memory models — the
    operational content of the paper's "separating memory models". For
    each test we explore {e all} schedules (op steps and commit steps)
    under each model and collect the reachable outcome set; an outcome
    reachable under PSO but not TSO witnesses the write-reordering gap
    the paper's tradeoff lives in, an outcome reachable under TSO but
    not SC witnesses the store→load gap.

    Outcomes are the tuple of per-process return values followed by the
    final committed values of the test's observed registers. *)

open Memsim

type t = {
  name : string;
  description : string;
  nregs : int;  (** shared registers [x0 .. x{nregs-1}], all initially 0 *)
  programs : Reg.t array -> Program.t array;
  observed : Reg.t array -> Reg.t list;  (** registers reported in outcomes *)
}

type outcome = { returns : int list; finals : int list }

let pp_outcome ppf o =
  Fmt.pf ppf "ret=(%a) mem=(%a)"
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    o.returns
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    o.finals

type run = {
  test : t;
  model : Memory_model.t;
  outcomes : outcome list;  (** sorted *)
  stats : Explore.stats;
  reorder_bound : int option;
      (** the (final) reorder bound enumerated under; [None] =
          unbounded *)
  bound_exact : bool;
      (** bounded enumeration certified saturation (zero bound hits on
          a complete run), so the outcome set is the full one. Always
          true unbounded. *)
}

let configure ?compile test ~model =
  let nprocs = Array.length (test.programs (Array.init test.nregs Fun.id)) in
  let layout = Layout.flat ~nprocs ~nregs:test.nregs in
  let regs = Array.init test.nregs Fun.id in
  (regs, Config.make ?compile ~model ~layout (test.programs regs))

(** Enumerate all reachable outcomes of [test] under [model]. [engine]
    selects the explorer ([`Dfs] default, [`Parallel j] for the
    multicore engine); [por] enables partial-order reduction, which
    preserves the outcome set (all quiescent states are still reached)
    while visiting fewer states. [tel] plugs a {!Telemetry.Hub.t} into
    the exploration for live progress and stats (see {!Mc.run}). *)
let run ?tel ?compile ?max_states ?engine ?por ?reorder_bound test ~model : run
    =
  let regs, cfg = configure ?compile test ~model in
  let observe final =
    {
      returns =
        List.init (Config.nprocs final) (fun p ->
            Option.value ~default:(-1) (Config.final_value final p));
      finals = List.map (Config.read_mem final) (test.observed regs);
    }
  in
  match reorder_bound with
  | None ->
      let outcomes, result =
        Mc.reachable_outcomes ?tel ?engine ?por ?max_states ~observe cfg
      in
      {
        test;
        model;
        outcomes;
        stats = result.Explore.stats;
        reorder_bound = None;
        bound_exact = true;
      }
  | Some (`K k) ->
      let outcomes, result =
        Mc.reachable_outcomes ?tel ?engine ?por ?max_states ~reorder_bound:k
          ~observe cfg
      in
      {
        test;
        model;
        outcomes;
        stats = result.Explore.stats;
        reorder_bound = Some k;
        bound_exact =
          result.Explore.stats.Explore.bound_hits = 0
          && not result.Explore.stats.Explore.truncated;
      }
  | Some `Deepen ->
      (* deepening a litmus enumeration always saturates (the bound
         stops climbing only at saturation or truncation), so the
         final outcome set is the full one unless truncated *)
      let jobs =
        match engine with Some (`Parallel j) -> j | Some `Dfs | None -> 1
      in
      let outcomes, d =
        Mc.deepen_outcomes ?tel ~jobs ?por ?max_states ~observe cfg
      in
      {
        test;
        model;
        outcomes;
        stats = d.Mc.result.Explore.stats;
        reorder_bound = Some d.Mc.final_bound;
        bound_exact = d.Mc.saturated;
      }

(** Does [model] admit [outcome] for this test? *)
let admits run outcome = List.mem outcome run.outcomes

(** Why a model sweep must skip this cell, if it must: the reorder
    budget meters overtaken write-buffer entries, and view-based
    models (RA/SRA) have no write buffer to meter. Sweeps print/emit
    this marker per cell instead of silently dropping the row, so
    bounded sweep tables stay honest about their coverage. (Naming a
    view model explicitly together with a bound remains an error —
    this is only for implicit all-model sweeps.) *)
let skip_reason ?reorder_bound model =
  match reorder_bound with
  | Some _ when Memory_model.view_based model ->
      Some "reorder bound undefined on view models"
  | Some _ | None -> None

let pp_run ppf r =
  Fmt.pf ppf "@[<v2>%s under %a (%d states%s%s):@,%a@]" r.test.name
    Memory_model.pp r.model r.stats.Explore.states
    (if r.stats.Explore.truncated then ", truncated" else "")
    (match r.reorder_bound with
    | Some k when not r.bound_exact ->
        Fmt.str ", reorder-bound %d subset" k
    | _ -> "")
    (Fmt.list pp_outcome) r.outcomes

(** Compare the outcome sets of two models on the same test: outcomes
    of [weaker] not reachable under [stronger]. *)
let separation ~stronger ~weaker =
  List.filter (fun o -> not (List.mem o stronger.outcomes)) weaker.outcomes

(** Per-process fence-site counts, from one sequential SC execution
    (each process runs alone, in pid order, over the cumulative state —
    so spins awaiting an earlier process's write terminate). Valid for
    tests whose processes execute their fences in fixed program-text
    order, which holds for the whole corpus and for compiled fuzz
    programs. *)
let fence_sites test =
  let _regs, cfg = configure test ~model:Memory_model.Sc in
  let trace, _ = Scheduler.sequential cfg in
  let counts = Array.make (Config.nprocs cfg) 0 in
  List.iter
    (function
      | Step.Fence { p } -> counts.(p) <- counts.(p) + 1 | _ -> ())
    (Trace.steps trace);
  counts

(** Re-instantiate the test with a subset of its fences, under a global
    site numbering: process [p]'s sites start at the prefix sum of the
    earlier processes' {!fence_sites} counts. [marker i] labels every
    site, kept or dropped (zero-cost, invisible to outcomes and state
    keys); the full mask without a marker leaves the test extensionally
    unchanged. *)
let with_fence_mask ?marker ~keep test =
  let counts = fence_sites test in
  let offsets = Array.make (Array.length counts) 0 in
  for p = 1 to Array.length counts - 1 do
    offsets.(p) <- offsets.(p - 1) + counts.(p - 1)
  done;
  {
    test with
    programs =
      (fun regs ->
        Array.mapi
          (fun p prog -> Program.mask_fences ?marker ~base:offsets.(p) ~keep prog)
          (test.programs regs));
  }
