(** The classic litmus tests (SB, MP, LB, 2+2W and fenced variants).
    See the implementation header for the expected separations, which
    experiment E7 verifies mechanically. *)

val sb : Test.t
val sb_fenced : Test.t

(** SB with fetch-and-store instead of plain writes; the implicit
    barrier of strong operations restores SC in every model. *)
val sb_rmw : Test.t

val mp : Test.t
val mp_fenced : Test.t
val two_plus_two_w : Test.t
val lb : Test.t

(** 3 threads, write-to-read causality; the weak outcome is forbidden
    in every multi-copy-atomic write-buffer model. *)
val wrc : Test.t

(** 4 threads; forbidden in every write-buffer model (multi-copy
    atomicity). *)
val iriw : Test.t

(** Same-location coherence; backwards read order forbidden everywhere. *)
val corr : Test.t

val all : Test.t list

(** The weak outcome each test is "about", for report tables. *)
val interesting_outcome : Test.t -> Test.outcome
