let () =
  let open Memsim in
  (* T0 writes 100 to r0; T1 reads r0 and branches at >= 64 *)
  let test =
    {
      Litmus.Test.name = "probe-hole";
      description = "";
      nregs = 1;
      programs =
        (fun regs ->
          [|
            Program.Write (regs.(0), 100, fun () -> Program.Ret 0);
            Program.Read (regs.(0), fun v ->
                if v >= 64 then Program.Ret 1 else Program.Ret 0);
          |]);
      observed = (fun regs -> Array.to_list regs);
    }
  in
  let show compile =
    let run = Litmus.Test.run ~compile test ~model:Memsim.Memory_model.sc in
    List.iter
      (fun (o : Litmus.Test.outcome) ->
        Fmt.pr "compile=%b returns=%a@." compile
          Fmt.(Dump.array int) o.returns)
      run.Litmus.Test.outcomes
  in
  show true;
  show false
